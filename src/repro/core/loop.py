"""The pool-based active-learning driver (Figure 1 of the paper).

Per round: (re)train the model on the labeled pool, evaluate it on the
test split, let the query strategy score every unlabeled sample (history-
aware strategies record their base scores into the shared
:class:`~repro.core.history.HistoryStore` as a side effect), move the
selected batch into the labeled pool, repeat.  The first labeled batch is
drawn at random, as in the paper's setup (Sec. 5.2.1).

The result object keeps the full audit trail — per-round records,
learning curve, the history store — which the Table 6 benchmark uses to
compute WSHS/FHS diagnostics of whatever the strategy selected.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from ..data.datasets import SequenceDataset, TextDataset
from ..eval.curves import LearningCurve
from ..eval.metrics import evaluate_model
from ..exceptions import ConfigurationError
from ..rng import ensure_rng
from .history import HistoryStore
from .pool import Pool
from .prediction_cache import PredictionCache
from .strategies.base import QueryStrategy, SelectionContext


@dataclass(frozen=True)
class RoundRecord:
    """What happened in one active-learning round.

    Attributes
    ----------
    round_index:
        1-based round number (0 = the random initial batch).
    labeled_count:
        Labeled-pool size the model was trained on this round.
    metric:
        Test metric of that model.
    selected:
        Dataset indices chosen for annotation this round (empty for the
        final evaluation-only record).
    selected_scores:
        Base-strategy evaluation scores of the selected samples, read
        back from the history store (NaN for strategies that record no
        history).
    """

    round_index: int
    labeled_count: int
    metric: float
    selected: np.ndarray
    selected_scores: np.ndarray


@dataclass
class ALResult:
    """Outcome of an active-learning run."""

    strategy_name: str
    records: list[RoundRecord]
    history: HistoryStore
    final_model: object = None
    #: Dataset indices in selection order, round by round.
    selection_order: list[np.ndarray] = field(default_factory=list)

    def curve(self, label: str = "") -> LearningCurve:
        """Learning curve (labeled count -> metric) of the run."""
        counts = np.array([r.labeled_count for r in self.records], dtype=np.int64)
        values = np.array([r.metric for r in self.records], dtype=np.float64)
        return LearningCurve(counts, values, label=label or self.strategy_name)


def _validated_model_history(strategy: QueryStrategy) -> int:
    """``strategy.requires_model_history`` as a checked non-negative int.

    The value doubles as the model-history slice bound
    (``del model_history[:-keep]``), so a strategy accidentally returning
    ``True`` would silently keep exactly one model; reject bools and
    anything else that is not a non-negative integer instead.
    """
    keep = strategy.requires_model_history
    if isinstance(keep, bool) or not isinstance(keep, (int, np.integer)):
        raise ConfigurationError(
            f"{type(strategy).__name__}.requires_model_history must be a "
            f"non-negative int (number of past models to retain), got {keep!r}"
        )
    if keep < 0:
        raise ConfigurationError(
            f"{type(strategy).__name__}.requires_model_history must be >= 0, "
            f"got {keep}"
        )
    return int(keep)


class ActiveLearningLoop:
    """Configured, repeatable pool-based AL experiment.

    Parameters
    ----------
    model_prototype:
        Unfitted model; a fresh clone is trained from scratch each round
        (deterministic given its seed).
    strategy:
        The query strategy under test.
    train_dataset, test_dataset:
        Pool to annotate from and held-out evaluation split.
    batch_size:
        Samples annotated per round (the paper uses 25 for binary text
        classification, 100 for TREC and NER).
    rounds:
        Number of strategy-driven annotation rounds.
    initial_size:
        Size of the random initial labeled set (defaults to
        ``batch_size``).
    metric:
        Custom ``f(model, dataset) -> float``; defaults to the paper's
        metric for the model family (accuracy / span F1).
    seed_or_rng:
        Controls the initial batch, strategy tie-breaks, and any
        stochastic strategy internals.
    reseed_model:
        When True (default) and the model exposes a ``seed`` attribute,
        each round's clone gets a fresh seed drawn from the loop RNG.
        This reproduces the per-iteration training stochasticity of the
        paper's fine-tuned networks (mini-batch order, dropout), which is
        precisely the evaluation noise the historical sequence averages
        out; the run as a whole stays deterministic given
        ``seed_or_rng``.
    history_limit:
        Cap the history store at this many most-recent rounds (the
        paper's O(l*N) space bound; see Table 2).  Must be at least the
        strategy's window or windowed statistics would be truncated;
        ``None`` (default) keeps the full history for post-hoc analysis.
    """

    def __init__(
        self,
        model_prototype,
        strategy: QueryStrategy,
        train_dataset: "TextDataset | SequenceDataset",
        test_dataset: "TextDataset | SequenceDataset",
        batch_size: int = 25,
        rounds: int = 20,
        initial_size: "int | None" = None,
        metric: "Callable[[object, object], float] | None" = None,
        seed_or_rng: "int | np.random.Generator | None" = None,
        reseed_model: bool = True,
        history_limit: "int | None" = None,
    ) -> None:
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        if rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
        initial = batch_size if initial_size is None else initial_size
        if initial < 1:
            raise ConfigurationError(f"initial_size must be >= 1, got {initial}")
        needed = initial + rounds * batch_size
        if needed > len(train_dataset):
            raise ConfigurationError(
                f"run needs {needed} samples but the pool has {len(train_dataset)}"
            )
        self.model_prototype = model_prototype
        self.strategy = strategy
        self.train_dataset = train_dataset
        self.test_dataset = test_dataset
        self.batch_size = batch_size
        self.rounds = rounds
        self.initial_size = initial
        window = getattr(strategy, "window", None)
        if history_limit is not None and window is not None and history_limit < window:
            raise ConfigurationError(
                f"history_limit {history_limit} is below the strategy window "
                f"{window}; windowed statistics would be truncated"
            )
        self.metric = metric or evaluate_model
        self.reseed_model = reseed_model
        self.history_limit = history_limit
        self._rng = ensure_rng(seed_or_rng)
        self._keep_models = _validated_model_history(strategy)

    def _fresh_model(self, rng: np.random.Generator):
        """Clone the prototype, optionally with a fresh per-round seed."""
        model = self.model_prototype.clone()
        if self.reseed_model and hasattr(model, "seed"):
            model.seed = int(rng.integers(2**31))
        return model

    def run(self) -> ALResult:
        """Execute the full loop and return the audit trail."""
        rng = self._rng
        n = len(self.train_dataset)
        initial = rng.choice(n, size=self.initial_size, replace=False)
        pool = Pool(n, initial_labeled=initial)
        history = HistoryStore(n, strategy_name=self.strategy.name)
        keep_models = self._keep_models
        model_history: list = []
        records: list[RoundRecord] = []
        selection_order: list[np.ndarray] = []
        model = None
        cache = PredictionCache()

        for round_index in range(self.rounds + 1):
            # The previous round's model is gone; keeping its entries
            # would only pin dead models and recycle their ids.
            cache.clear()
            model = self._fresh_model(rng).fit(
                self.train_dataset.subset(pool.labeled_indices)
            )
            if self.metric is evaluate_model:
                metric_value = evaluate_model(model, self.test_dataset, cache=cache)
            else:
                metric_value = self.metric(model, self.test_dataset)
            if keep_models:
                model_history.append(model)
                del model_history[:-keep_models]
            if round_index == self.rounds or pool.num_unlabeled < self.batch_size:
                records.append(
                    RoundRecord(
                        round_index=round_index,
                        labeled_count=pool.num_labeled,
                        metric=metric_value,
                        selected=np.empty(0, dtype=np.int64),
                        selected_scores=np.empty(0),
                    )
                )
                break
            context = SelectionContext(
                dataset=self.train_dataset,
                unlabeled=pool.unlabeled_indices,
                labeled=pool.labeled_indices,
                history=history,
                round_index=round_index + 1,
                rng=rng,
                model_history=list(model_history),
                cache=cache,
            )
            selected = self.strategy.select(model, context, self.batch_size)
            score_vector = history.current_scores(selected)
            records.append(
                RoundRecord(
                    round_index=round_index,
                    labeled_count=pool.num_labeled,
                    metric=metric_value,
                    selected=selected,
                    selected_scores=score_vector,
                )
            )
            selection_order.append(selected)
            pool.label(selected)
            if self.history_limit is not None:
                history.prune(self.history_limit)

        return ALResult(
            strategy_name=self.strategy.name,
            records=records,
            history=history,
            final_model=model,
            selection_order=selection_order,
        )

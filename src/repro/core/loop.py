"""The pool-based active-learning driver (Figure 1 of the paper).

Per round: (re)train the model on the labeled pool, evaluate it on the
test split, let the query strategy score every unlabeled sample (history-
aware strategies record their base scores into the shared
:class:`~repro.core.history.HistoryStore` as a side effect), move the
selected batch into the labeled pool, repeat.  The first labeled batch is
drawn at random, as in the paper's setup (Sec. 5.2.1).

:class:`ActiveLearningLoop` is the *closed* form of the loop — every
proposed batch is answered immediately from the dataset's own labels (the
simulation oracle of the paper's experiments).  The loop body itself
lives in :class:`~repro.core.session.SessionEngine`, a re-entrant state
machine that also supports external annotators, lifecycle observers, and
mid-run snapshot/resume; this class builds an engine and drives it to
completion, producing byte-identical results to the historical monolithic
implementation.

The result object keeps the full audit trail — per-round records,
learning curve, the history store — which the Table 6 benchmark uses to
compute WSHS/FHS diagnostics of whatever the strategy selected.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from ..data.datasets import SequenceDataset, TextDataset
from ..eval.metrics import evaluate_model
from ..rng import ensure_rng
from .session import (
    ALResult,
    RoundRecord,
    SessionEngine,
    run_to_completion,
    validated_model_history,
)
from .strategies.base import QueryStrategy

# Re-exported for callers that historically imported these from here.
__all__ = ["ALResult", "ActiveLearningLoop", "RoundRecord"]

#: Backward-compatible alias; the checked accessor moved to
#: :mod:`repro.core.session` with the engine.
_validated_model_history = validated_model_history


class ActiveLearningLoop:
    """Configured, repeatable pool-based AL experiment.

    Parameters
    ----------
    model_prototype:
        Unfitted model; a fresh clone is trained from scratch each round
        (deterministic given its seed).
    strategy:
        The query strategy under test.
    train_dataset, test_dataset:
        Pool to annotate from and held-out evaluation split.
    batch_size:
        Samples annotated per round (the paper uses 25 for binary text
        classification, 100 for TREC and NER).
    rounds:
        Number of strategy-driven annotation rounds.
    initial_size:
        Size of the random initial labeled set (defaults to
        ``batch_size``).
    metric:
        Custom ``f(model, dataset) -> float``; defaults to the paper's
        metric for the model family (accuracy / span F1).  A metric whose
        signature declares a ``cache`` keyword receives the loop's
        per-round :class:`~repro.core.prediction_cache.PredictionCache`.
    seed_or_rng:
        Controls the initial batch, strategy tie-breaks, and any
        stochastic strategy internals.
    reseed_model:
        When True (default) and the model exposes a ``seed`` attribute,
        each round's clone gets a fresh seed drawn from the loop RNG.
        This reproduces the per-iteration training stochasticity of the
        paper's fine-tuned networks (mini-batch order, dropout), which is
        precisely the evaluation noise the historical sequence averages
        out; the run as a whole stays deterministic given
        ``seed_or_rng``.
    history_limit:
        Cap the history store at this many most-recent rounds (the
        paper's O(l*N) space bound; see Table 2).  Must be at least the
        strategy's window or windowed statistics would be truncated;
        ``None`` (default) keeps the full history for post-hoc analysis.
    training_mode:
        ``"cold"`` (default) refits each round's model from scratch —
        byte-identical to historical behaviour.  ``"warm"`` resumes each
        round's fit from the previous round's parameters (fewer epochs)
        for model families that support it; deterministic given the run
        seed, but a different (faster) optimisation trajectory.
    """

    def __init__(
        self,
        model_prototype,
        strategy: QueryStrategy,
        train_dataset: "TextDataset | SequenceDataset",
        test_dataset: "TextDataset | SequenceDataset",
        batch_size: int = 25,
        rounds: int = 20,
        initial_size: "int | None" = None,
        metric: "Callable[[object, object], float] | None" = None,
        seed_or_rng: "int | np.random.Generator | None" = None,
        reseed_model: bool = True,
        history_limit: "int | None" = None,
        history_backend: str = "local",
        training_mode: str = "cold",
    ) -> None:
        self._rng = ensure_rng(seed_or_rng)
        # Validate eagerly with a throwaway engine so misconfiguration
        # fails at construction, not at run() time.  The probe performs
        # no work, draws nothing from the RNG, and is discarded.
        probe = SessionEngine(
            model_prototype,
            strategy,
            train_dataset,
            test_dataset,
            batch_size=batch_size,
            rounds=rounds,
            initial_size=initial_size,
            metric=metric,
            seed_or_rng=self._rng,
            reseed_model=reseed_model,
            history_limit=history_limit,
            history_backend=history_backend,
            training_mode=training_mode,
        )
        self.model_prototype = model_prototype
        self.strategy = strategy
        self.train_dataset = train_dataset
        self.test_dataset = test_dataset
        self.batch_size = batch_size
        self.rounds = rounds
        self.initial_size = probe.initial_size
        self.metric = probe.metric
        self.reseed_model = reseed_model
        self.history_limit = history_limit
        self.history_backend = history_backend
        self.training_mode = training_mode
        self._keep_models = probe._keep_models

    def build_engine(self, observers: Sequence = ()) -> SessionEngine:
        """A fresh :class:`SessionEngine` over this loop's configuration.

        The engine consumes the loop's own RNG, so interleaving
        :meth:`build_engine` / :meth:`run` calls continues one random
        stream exactly as repeated :meth:`run` calls always have.
        """
        return SessionEngine(
            self.model_prototype,
            self.strategy,
            self.train_dataset,
            self.test_dataset,
            batch_size=self.batch_size,
            rounds=self.rounds,
            initial_size=self.initial_size,
            metric=None if self.metric is evaluate_model else self.metric,
            seed_or_rng=self._rng,
            reseed_model=self.reseed_model,
            history_limit=self.history_limit,
            history_backend=self.history_backend,
            training_mode=self.training_mode,
            observers=observers,
        )

    def run(self, observers: Sequence = ()) -> ALResult:
        """Execute the full loop and return the audit trail.

        Every proposed batch — including the random initial one — is
        answered with the training dataset's own labels.
        """
        return run_to_completion(self.build_engine(observers))

"""MNLP: Maximum Normalized Log Probability (Shen et al., 2018; Eq. 13).

Sequence least-confidence sums log probabilities over tokens, so it is
biased toward long sentences; MNLP removes the bias by dividing the
best-path log probability by the sentence length:

    score(x) = 1 - (1/n) log p(y* | x).

Higher scores mean less confident (per token), so top-k selection matches
the paper.
"""

from __future__ import annotations

import numpy as np

from ...exceptions import StrategyError
from ...models.base import SequenceLabeler
from .base import QueryStrategy, SelectionContext, register_strategy


@register_strategy("mnlp")
class MNLP(QueryStrategy):
    """Length-normalised sequence uncertainty for NER."""

    model_only_scores = True

    @property
    def name(self) -> str:
        return "MNLP"

    def scores(self, model, context: SelectionContext) -> np.ndarray:
        if not isinstance(model, SequenceLabeler):
            raise StrategyError(f"MNLP requires a SequenceLabeler, got {type(model).__name__}")
        log_probas = context.best_path_log_proba(model)
        lengths = np.maximum(context.candidates.lengths(), 1)
        return 1.0 - log_probas / lengths

"""Random sampling baseline (i.i.d. selection)."""

from __future__ import annotations

import numpy as np

from .base import QueryStrategy, SelectionContext, register_strategy


@register_strategy("random")
class Random(QueryStrategy):
    """Uniform random scores: the paper's i.i.d. baseline."""

    @property
    def name(self) -> str:
        return "Random"

    def scores(self, model, context: SelectionContext) -> np.ndarray:
        return context.rng.random(len(context.unlabeled))

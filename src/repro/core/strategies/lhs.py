"""LHS: Learn from Historical Sequences (Sec. 4.4).

The third proposed strategy: a LambdaMART ranker, trained offline by
Algorithm 1 (:func:`repro.core.ranker_training.train_lhs_ranker`), scores
unlabeled samples from features of their historical evaluation sequences.

Following Sec. 4.4.1, selection does not rank the whole pool: a candidate
set is first formed from the top-scoring samples of one or more cheap
base strategies (entropy, LC, ...), and the ranker orders only those
candidates.  ``scores`` still ranks the full pool so LHS satisfies the
generic strategy contract (used by tests and diagnostics).
"""

from __future__ import annotations

import numpy as np

from ...exceptions import ConfigurationError, StrategyError
from ..selection import top_k_indices
from .base import (
    HistoryAwareStrategy,
    QueryStrategy,
    SelectionContext,
    register_strategy,
)


@register_strategy("lhs")
class LHS(HistoryAwareStrategy):
    """Learned (LambdaMART) query strategy over historical features.

    Parameters
    ----------
    base:
        The strategy whose scores populate the history store (the
        "specific query strategy S" of the paper).
    ranker:
        A fitted ranker bundle from
        :func:`~repro.core.ranker_training.train_lhs_ranker`; its feature
        extractor defines the feature layout.
    candidate_strategies:
        Extra cheap strategies whose top samples join the candidate set
        (the base is always included).
    candidate_factor:
        Candidate-set size per strategy, as a multiple of the batch size.
    """

    def __init__(
        self,
        base: QueryStrategy,
        ranker: "LHSRanker",
        candidate_strategies: "list[QueryStrategy] | None" = None,
        candidate_factor: int = 3,
    ) -> None:
        super().__init__(base, window=ranker.extractor.window)
        if candidate_factor < 1:
            raise ConfigurationError(
                f"candidate_factor must be >= 1, got {candidate_factor}"
            )
        self.ranker = ranker
        self.candidate_strategies = list(candidate_strategies or [])
        self.candidate_factor = candidate_factor

    @property
    def name(self) -> str:
        return f"LHS({self.base.name})"

    def scores(self, model, context: SelectionContext) -> np.ndarray:
        self.base_scores(model, context)
        positions = np.arange(len(context.unlabeled))
        features = self.ranker.extractor.extract(model, context, positions)
        return self.ranker.model.predict(features)

    def select(self, model, context: SelectionContext, batch_size: int) -> np.ndarray:
        if batch_size > len(context.unlabeled):
            raise StrategyError(
                f"cannot select {batch_size} from {len(context.unlabeled)} unlabeled"
            )
        current = self.base_scores(model, context)
        per_strategy = min(
            self.candidate_factor * batch_size, len(context.unlabeled)
        )
        candidate_positions = set(top_k_indices(current, per_strategy).tolist())
        for strategy in self.candidate_strategies:
            other = np.asarray(strategy.scores(model, context), dtype=np.float64)
            candidate_positions.update(top_k_indices(other, per_strategy).tolist())
        positions = np.asarray(sorted(candidate_positions), dtype=np.int64)
        if len(positions) < batch_size:
            positions = np.arange(len(context.unlabeled))
        features = self.ranker.extractor.extract(model, context, positions)
        ranking = self.ranker.model.predict(features)
        order = top_k_indices(ranking, batch_size, context.rng)
        return context.unlabeled[positions[order]]

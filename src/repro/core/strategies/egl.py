"""Expected Gradient Length (Eq. 5).

Selects samples whose labeling would change the model most.  The gradient
marginalisation lives in the model (closed form for log-linear models,
per-class backprop for networks); the strategy just requires the
capability and surfaces a clear error otherwise.
"""

from __future__ import annotations

import numpy as np

from ...exceptions import StrategyError
from ...models.base import Classifier, supports_gradient_lengths
from .base import QueryStrategy, SelectionContext, register_strategy


@register_strategy("egl")
class EGL(QueryStrategy):
    """Expected loss-gradient norm over all candidate labels."""

    model_only_scores = True

    @property
    def name(self) -> str:
        return "EGL"

    def scores(self, model, context: SelectionContext) -> np.ndarray:
        if not isinstance(model, Classifier) or not supports_gradient_lengths(model):
            raise StrategyError(
                f"EGL requires a Classifier with expected_gradient_lengths; "
                f"{type(model).__name__} does not provide it"
            )
        return np.asarray(model.expected_gradient_lengths(context.candidates))

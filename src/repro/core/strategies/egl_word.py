"""EGL-word: expected gradient length on word embeddings (Eq. 12).

Zhang, Lease & Wallace (2017): for models whose text representation
hinges on word embeddings, select samples with the largest expected
gradient on the embedding layer, max-pooled over the sentence's words.
The gradient computation lives in the model (see
:meth:`repro.models.textcnn.TextCNN.expected_embedding_gradients`).
"""

from __future__ import annotations

import numpy as np

from ...exceptions import StrategyError
from ...models.base import Classifier, supports_embedding_gradients
from .base import QueryStrategy, SelectionContext, register_strategy


@register_strategy("egl-word")
class EGLWord(QueryStrategy):
    """Max-over-words expected embedding gradient."""

    model_only_scores = True

    @property
    def name(self) -> str:
        return "EGL-word"

    def scores(self, model, context: SelectionContext) -> np.ndarray:
        if not isinstance(model, Classifier) or not supports_embedding_gradients(model):
            raise StrategyError(
                f"EGL-word requires a Classifier with expected_embedding_gradients; "
                f"{type(model).__name__} does not provide it"
            )
        return np.asarray(model.expected_embedding_gradients(context.candidates))

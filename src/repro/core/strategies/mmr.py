"""Maximal-marginal-relevance diversity batch selection (Eq. 8).

Greedy batch construction: each pick maximises
``lambda * phi_S(x) - (1 - lambda) * max_sim(x, L)`` where ``L`` is the
labeled set *plus* the samples already picked into the current batch, so
one batch never contains near-duplicates.
"""

from __future__ import annotations

import numpy as np

from ...exceptions import ConfigurationError, StrategyError
from .base import QueryStrategy, SelectionContext, register_strategy
from .density import candidate_vectors


@register_strategy("mmr")
class MMR(QueryStrategy):
    """Diversity-aware batch selection around an informative base.

    Parameters
    ----------
    base:
        The informative strategy providing ``phi_S``.
    balance:
        The paper's lambda: 1.0 = pure informativeness, 0.0 = pure
        diversity.
    """

    def __init__(self, base: QueryStrategy, balance: float = 0.7) -> None:
        if not 0 <= balance <= 1:
            raise ConfigurationError(f"balance must be in [0, 1], got {balance}")
        self.base = base
        self.balance = balance

    @property
    def name(self) -> str:
        return f"MMR({self.base.name}, lambda={self.balance})"

    def scores(self, model, context: SelectionContext) -> np.ndarray:
        """Non-batch score: informativeness penalised by similarity to L."""
        base_scores = np.asarray(self.base.scores(model, context), dtype=np.float64)
        vectors = candidate_vectors(context.candidates)
        if len(context.labeled):
            labeled_vectors = candidate_vectors(
                context.dataset.subset(context.labeled)
            )
            max_sim = (vectors @ labeled_vectors.T).max(axis=1)
        else:
            max_sim = np.zeros(len(vectors))
        return self.balance * base_scores - (1.0 - self.balance) * max_sim

    def select(self, model, context: SelectionContext, batch_size: int) -> np.ndarray:
        """Greedy MMR: re-penalise against picks made within the batch."""
        if batch_size > len(context.unlabeled):
            raise StrategyError(
                f"cannot select {batch_size} from {len(context.unlabeled)} unlabeled"
            )
        base_scores = np.asarray(self.base.scores(model, context), dtype=np.float64)
        vectors = candidate_vectors(context.candidates)
        if len(context.labeled):
            labeled_vectors = candidate_vectors(context.dataset.subset(context.labeled))
            max_sim = (vectors @ labeled_vectors.T).max(axis=1)
        else:
            max_sim = np.zeros(len(vectors))
        picked: list[int] = []
        available = np.ones(len(vectors), dtype=bool)
        for _ in range(batch_size):
            combined = self.balance * base_scores - (1.0 - self.balance) * max_sim
            combined[~available] = -np.inf
            choice = int(combined.argmax())
            picked.append(choice)
            available[choice] = False
            max_sim = np.maximum(max_sim, vectors @ vectors[choice])
        return context.unlabeled[np.asarray(picked, dtype=np.int64)]

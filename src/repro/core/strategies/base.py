"""Query-strategy protocol, selection context, and registry.

A strategy's job per round (Sec. 2 of the paper): assign every unlabeled
sample a score and pick the ``batch_size`` best.  The
:class:`SelectionContext` carries everything a strategy may need — the
dataset, pool views, the :class:`~repro.core.history.HistoryStore`, the
round number, an RNG for tie-breaking, and (for committee-over-time
baselines) the recently fitted models — plus per-round caches so that
e.g. ``FHS(entropy)`` and a diagnostic probe don't recompute the model's
probabilities.

History-aware strategies derive from :class:`HistoryAwareStrategy`: they
wrap a base strategy, record its scores into the history store once per
round, and combine the stored sequence with the current score.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from ...data.datasets import SequenceDataset, TextDataset
from ...exceptions import ConfigurationError, StrategyError
from ...models.base import Classifier, SequenceLabeler
from ..history import HistoryStore
from ..prediction_cache import PredictionCache
from ..selection import top_k_indices, top_k_reference


@dataclass
class SelectionContext:
    """Everything a query strategy can see in one round.

    Attributes
    ----------
    dataset:
        The full training dataset (labeled + unlabeled samples).
    unlabeled:
        Indices of currently unlabeled samples; all score vectors are
        aligned with this array.
    labeled:
        Indices of currently labeled samples.
    history:
        The shared history store for this run.
    round_index:
        1-based active-learning round number.
    rng:
        RNG for stochastic strategies and tie-breaking.
    model_history:
        Recently fitted models, oldest first, most recent last (only
        populated when the strategy requests it).
    training_mode:
        The engine's training mode (``"cold"`` or ``"warm"``).  Strategies
        that train auxiliary models (QBC committees) may mirror the warm
        fast path when it is ``"warm"``; ``"cold"`` keeps historical
        behaviour bit for bit.
    """

    dataset: "TextDataset | SequenceDataset"
    unlabeled: np.ndarray
    labeled: np.ndarray
    history: HistoryStore
    round_index: int
    rng: np.random.Generator
    model_history: list = field(default_factory=list)
    training_mode: str = "cold"
    #: Shared per-round forward-pass cache; the loop passes its own so
    #: strategy scoring and metric evaluation reuse predictions.  A
    #: stand-alone context (tests, diagnostics) gets a private one.
    cache: PredictionCache = field(default_factory=PredictionCache, repr=False)
    _candidates: "TextDataset | SequenceDataset | None" = field(default=None, repr=False)
    _memo: dict = field(default_factory=dict, repr=False)

    @property
    def candidates(self) -> "TextDataset | SequenceDataset":
        """The unlabeled samples as a dataset (built once per round)."""
        if self._candidates is None:
            self._candidates = self.dataset.subset(self.unlabeled)
        return self._candidates

    def probabilities(self, model: Classifier) -> np.ndarray:
        """Cached ``predict_proba`` of ``model`` on the candidates."""
        return self.cache.predict_proba(model, self.candidates)

    def token_marginals(self, model: SequenceLabeler) -> list[np.ndarray]:
        """Cached token marginals of ``model`` on the candidates."""
        return self.cache.token_marginals(model, self.candidates)

    def best_path_log_proba(self, model: SequenceLabeler) -> np.ndarray:
        """Cached Viterbi-path log-probabilities on the candidates."""
        return self.cache.best_path_log_proba(model, self.candidates)

    def memoize_scores(self, key: tuple, compute: Callable[[], np.ndarray]) -> np.ndarray:
        """Round-scoped memo for expensive multi-pass score vectors.

        BALD and QBC use this so a second ``scores`` call within the
        same round (e.g. a combined strategy plus a diagnostic probe)
        returns the first call's vector instead of re-running MC draws or
        retraining the committee — which would also consume extra RNG
        state and perturb every later selection.
        """
        if key not in self._memo:
            self._memo[key] = compute()
        return self._memo[key]


class QueryStrategy(ABC):
    """A scoring rule over unlabeled samples; higher scores are selected."""

    #: How many past fitted models the loop should retain for this
    #: strategy (0 = none).  HKLD sets this to its committee size.
    requires_model_history: int = 0

    #: Capability flag: ``scores`` is a deterministic, RNG-free function
    #: of the current model and the candidate set alone (no history, no
    #: model committee, no randomness).  History-aware wrappers use this
    #: to skip rescoring within a round: once such a base's scores are
    #: recorded for the current round, :meth:`HistoryStore.current_scores`
    #: already holds them bit for bit.
    model_only_scores: bool = False

    @property
    @abstractmethod
    def name(self) -> str:
        """Readable identifier used in reports, e.g. ``"WSHS(entropy)"``."""

    @abstractmethod
    def scores(
        self, model: "Classifier | SequenceLabeler", context: SelectionContext
    ) -> np.ndarray:
        """Score every sample in ``context.unlabeled`` (aligned array)."""

    def select(
        self,
        model: "Classifier | SequenceLabeler",
        context: SelectionContext,
        batch_size: int,
    ) -> np.ndarray:
        """Dataset indices of the ``batch_size`` best unlabeled samples.

        Ties are broken uniformly at random so runs with symmetric
        initial scores (e.g. an untrained model) don't systematically
        prefer low indices.  The pick runs through the partial
        :func:`~repro.core.selection.top_k_indices` — bit-identical to
        the full-sort :meth:`select_reference` oracle, O(n) in the pool.
        """
        score_vector = self._validated_scores(model, context, batch_size)
        order = top_k_indices(score_vector, batch_size, context.rng)
        return context.unlabeled[order]

    def select_reference(
        self,
        model: "Classifier | SequenceLabeler",
        context: SelectionContext,
        batch_size: int,
    ) -> np.ndarray:
        """Full-sort oracle for :meth:`select` (tests and benchmarks).

        Runs the historical ``np.lexsort((jitter, -scores))`` over the
        whole pool; :meth:`select` must match it bit for bit.
        """
        score_vector = self._validated_scores(model, context, batch_size)
        order = top_k_reference(score_vector, batch_size, context.rng)
        return context.unlabeled[order]

    def _validated_scores(
        self,
        model: "Classifier | SequenceLabeler",
        context: SelectionContext,
        batch_size: int,
    ) -> np.ndarray:
        """Shared ``select`` precondition checks + score computation."""
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        if batch_size > len(context.unlabeled):
            raise StrategyError(
                f"cannot select {batch_size} samples from "
                f"{len(context.unlabeled)} unlabeled"
            )
        score_vector = np.asarray(self.scores(model, context), dtype=np.float64)
        if score_vector.shape != context.unlabeled.shape:
            raise StrategyError(
                f"{self.name}: scores shape {score_vector.shape} does not match "
                f"{len(context.unlabeled)} candidates"
            )
        return score_vector

    def __repr__(self) -> str:
        return self.name


class HistoryAwareStrategy(QueryStrategy):
    """A strategy that wraps a base strategy and reads its score history.

    Subclasses call :meth:`base_scores` exactly once per round; the base
    scores are recorded into ``context.history`` so the next round sees a
    one-step-longer sequence.  ``window`` is the history length ``l`` of
    Eq. (10).
    """

    def __init__(self, base: QueryStrategy, window: int = 3) -> None:
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        if isinstance(base, HistoryAwareStrategy):
            raise ConfigurationError(
                "history-aware strategies cannot wrap each other"
            )
        self.base = base
        self.window = window

    @property
    def requires_model_history(self) -> int:  # type: ignore[override]
        return self.base.requires_model_history

    def base_scores(
        self, model: "Classifier | SequenceLabeler", context: SelectionContext
    ) -> np.ndarray:
        """Compute the base strategy's current scores and record them.

        Short-circuit: when the base declares
        :attr:`QueryStrategy.model_only_scores` and this round's scores
        are already recorded, the history's last-observation cache *is*
        the current score vector (the model hasn't changed within a
        round), so rescoring is skipped entirely.  Bases that consume
        RNG or read mutable state don't qualify and are always re-asked.
        """
        history = context.history
        if self.base.model_only_scores and history.has_round(context.round_index):
            recorded = history.current_scores(context.unlabeled)
            if not np.isnan(recorded).any():
                return recorded
        scores = np.asarray(self.base.scores(model, context), dtype=np.float64)
        if not history.has_round(context.round_index):
            history.append(context.round_index, context.unlabeled, scores)
        return scores


def strategy_capabilities(strategy: QueryStrategy) -> dict:
    """A strategy's capability flags as plain JSON-compatible data.

    Surfaced in session snapshots and spec-validation notes so a grid
    document records which optimisations (round-level rescoring
    short-circuit, model-history retention) each strategy allows.
    Wrappers report their own flags plus their base's under ``"base"``.
    """
    capabilities = {
        "model_only_scores": bool(getattr(strategy, "model_only_scores", False)),
        "requires_model_history": int(getattr(strategy, "requires_model_history", 0)),
    }
    base = getattr(strategy, "base", None)
    if isinstance(base, QueryStrategy):
        capabilities["base"] = strategy_capabilities(base)
    return capabilities


# -- shared scoring helpers ----------------------------------------------------


def distribution_entropy(probabilities: np.ndarray) -> np.ndarray:
    """Shannon entropy of each row of a probability matrix (Eq. 4)."""
    clipped = np.clip(probabilities, 1e-12, None)
    return -(clipped * np.log(clipped)).sum(axis=-1)


# -- registry -----------------------------------------------------------------

_REGISTRY: dict[str, Callable[..., QueryStrategy]] = {}


def _same_factory(a: Callable, b: Callable) -> bool:
    """Whether two factories are the same recipe.

    Identity, or an identical ``__module__`` + ``__qualname__`` pair —
    the latter so reloading a strategy module in a notebook (which
    recreates every class object) re-registers cleanly instead of
    raising.
    """
    if a is b:
        return True
    key_a = (getattr(a, "__module__", None), getattr(a, "__qualname__", None))
    key_b = (getattr(b, "__module__", None), getattr(b, "__qualname__", None))
    return None not in key_a and key_a == key_b


def register_strategy(key: str) -> Callable:
    """Class decorator registering a strategy factory under ``key``.

    Re-registering the *same* factory (same class, or the same class
    recreated by a module reload) under its key is an idempotent no-op;
    registering a different factory under an existing key still raises
    :class:`~repro.exceptions.ConfigurationError`.
    """

    def decorator(factory: Callable[..., QueryStrategy]) -> Callable[..., QueryStrategy]:
        lowered = key.lower()
        existing = _REGISTRY.get(lowered)
        if existing is not None and not _same_factory(existing, factory):
            raise ConfigurationError(f"strategy key {key!r} already registered")
        _REGISTRY[lowered] = factory
        return factory

    return decorator


def create_strategy(key: str, *args, **kwargs) -> QueryStrategy:
    """Instantiate a registered strategy by key (case-insensitive)."""
    lowered = key.lower()
    if lowered not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(f"unknown strategy {key!r}; known: {known}")
    return _REGISTRY[lowered](*args, **kwargs)


def registered_strategies() -> list[str]:
    """Sorted list of registered strategy keys."""
    return sorted(_REGISTRY)

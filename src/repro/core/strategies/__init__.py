"""Query strategies: classic baselines and the paper's proposals.

Classic (Sec. 3.1): Random, Entropy, LeastConfidence, Margin, EGL, QBC,
Density-weighted, MMR diversity.

Historical baselines (Sec. 3.2): HUS (unweighted sum of the last k
scores), HKLD (committee of the last k models).

State of the art (Sec. 4.5): EGL-word, BALD, MNLP.

Proposed (Sec. 4): WSHS (exponentially weighted history sum), FHS
(fluctuation-augmented score), LHS (learning-to-rank over historical
features).  All three wrap an arbitrary informative base strategy.
"""

from .bald import BALD
from .base import (
    HistoryAwareStrategy,
    QueryStrategy,
    SelectionContext,
    create_strategy,
    register_strategy,
    registered_strategies,
)
from .density import DensityWeighted
from .egl import EGL
from .egl_word import EGLWord
from .fhs import FHS
from .hus import HKLD, HUS
from .lhs import LHS
from .mmr import MMR
from .mnlp import MNLP
from .qbc import QBC
from .random_ import Random
from .uncertainty import Entropy, LeastConfidence, Margin
from .wshs import WSHS

__all__ = [
    "BALD",
    "DensityWeighted",
    "EGL",
    "EGLWord",
    "Entropy",
    "FHS",
    "HKLD",
    "HUS",
    "HistoryAwareStrategy",
    "LHS",
    "LeastConfidence",
    "MMR",
    "MNLP",
    "Margin",
    "QBC",
    "QueryStrategy",
    "Random",
    "SelectionContext",
    "WSHS",
    "create_strategy",
    "register_strategy",
    "registered_strategies",
]

"""BALD: Bayesian uncertainty via MC dropout (Gal et al., 2017).

The mutual information between the prediction and the model posterior,

    I(y; w) = H(E_w[p(y|x,w)]) - E_w[H(p(y|x,w))],

estimated with ``n_draws`` stochastic forward passes.  Classifiers must
support MC-dropout sampling; sequence labelers use their stochastic token
marginals, with the per-token mutual information averaged over the
sentence (our sequence-model analogue, documented in DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from ...exceptions import ConfigurationError, StrategyError
from ...models.base import (
    Classifier,
    SequenceLabeler,
    supports_stochastic_predictions,
)
from .base import QueryStrategy, SelectionContext, distribution_entropy, register_strategy


@register_strategy("bald")
class BALD(QueryStrategy):
    """MC-dropout mutual information.

    Parameters
    ----------
    n_draws:
        Number of stochastic forward passes per round.
    """

    def __init__(self, n_draws: int = 8) -> None:
        if n_draws < 2:
            raise ConfigurationError(f"n_draws must be >= 2, got {n_draws}")
        self.n_draws = n_draws

    @property
    def name(self) -> str:
        return f"BALD(T={self.n_draws})"

    def scores(self, model, context: SelectionContext) -> np.ndarray:
        if not supports_stochastic_predictions(model):
            raise StrategyError(
                f"BALD requires MC-dropout sampling; {type(model).__name__} "
                "does not provide it"
            )
        return context.memoize_scores(
            ("bald", self.n_draws, id(model)),
            lambda: self._mutual_information(model, context),
        )

    def _mutual_information(self, model, context: SelectionContext) -> np.ndarray:
        if isinstance(model, Classifier):
            draws = model.predict_proba_samples(
                context.candidates, self.n_draws, context.rng
            )  # (T, n, C)
            predictive = distribution_entropy(draws.mean(axis=0))
            expected = distribution_entropy(draws).mean(axis=0)
            return predictive - expected
        if isinstance(model, SequenceLabeler):
            sentence_draws = model.token_marginal_samples(
                context.candidates, self.n_draws, context.rng
            )  # list of (T, L, K)
            scores = np.empty(len(sentence_draws))
            for index, draws in enumerate(sentence_draws):
                predictive = distribution_entropy(draws.mean(axis=0))  # (L,)
                expected = distribution_entropy(draws).mean(axis=0)  # (L,)
                scores[index] = float((predictive - expected).mean())
            return scores
        raise StrategyError(f"BALD cannot score a {type(model).__name__}")

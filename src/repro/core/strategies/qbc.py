"""Query-by-Committee with average KL divergence (Eq. 6).

A committee of model clones is trained on bootstrap resamples of the
current labeled set; samples on which the members' predictive
distributions disagree most (mean KL to the consensus) are selected.
"""

from __future__ import annotations

import numpy as np

from ...exceptions import ConfigurationError, StrategyError
from ...models.base import Classifier, supports_warm_start
from .base import QueryStrategy, SelectionContext, register_strategy


@register_strategy("qbc")
class QBC(QueryStrategy):
    """Bootstrap committee disagreement for classifiers.

    Parameters
    ----------
    committee_size:
        Number of committee members retrained each round.
    """

    def __init__(self, committee_size: int = 3) -> None:
        if committee_size < 2:
            raise ConfigurationError(
                f"committee_size must be >= 2, got {committee_size}"
            )
        self.committee_size = committee_size

    @property
    def name(self) -> str:
        return f"QBC(C={self.committee_size})"

    def scores(self, model, context: SelectionContext) -> np.ndarray:
        if not isinstance(model, Classifier):
            raise StrategyError(f"QBC cannot score a {type(model).__name__}")
        return context.memoize_scores(
            ("qbc", self.committee_size, id(model)),
            lambda: self._disagreement(model, context),
        )

    def _disagreement(self, model, context: SelectionContext) -> np.ndarray:
        labeled = context.labeled
        if len(labeled) < 2:
            return context.rng.random(len(context.unlabeled))
        # In warm mode each member resumes from the round's fitted model
        # instead of training from scratch — same bootstrap resamples and
        # RNG stream, fewer epochs per member.  Cold mode is untouched.
        warm = context.training_mode == "warm" and supports_warm_start(model)
        member_probas = []
        for _ in range(self.committee_size):
            resample = context.rng.choice(labeled, size=len(labeled), replace=True)
            member = model.clone()
            if warm:
                member.fit(context.dataset.subset(resample), init_from=model)
            else:
                member.fit(context.dataset.subset(resample))
            member_probas.append(member.predict_proba(context.candidates))
        stacked = np.stack(member_probas)  # (C, n, K)
        consensus = stacked.mean(axis=0)
        ratio = np.log(np.clip(stacked, 1e-12, None) / np.clip(consensus, 1e-12, None))
        kl_per_member = (stacked * ratio).sum(axis=2)  # (C, n)
        return kl_per_member.mean(axis=0)

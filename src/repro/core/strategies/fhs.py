"""FHS: Fluctuation of the Historical Sequence (Sec. 4.3, Eq. 11).

The second proposed strategy: combine the current evaluation score with
the variance of the windowed historical sequence,

    F = ws * phi_t(x) + wf * Var(H_window(x)).

High fluctuation marks samples the updating model keeps changing its mind
about — boundary samples worth labeling.  Because the variance of a
bounded score sequence is numerically much smaller than the score itself
(compare the magnitudes in Table 6 of the paper), ``scale_fluctuation``
optionally normalises the variance term to the score's scale before the
weights are applied; the paper's raw form is the default.
"""

from __future__ import annotations

import numpy as np

from ...exceptions import ConfigurationError
from .base import HistoryAwareStrategy, QueryStrategy, SelectionContext, register_strategy


@register_strategy("fhs")
class FHS(HistoryAwareStrategy):
    """Current score plus fluctuation of the history window.

    Parameters
    ----------
    base:
        Wrapped informative strategy.
    window:
        History window for the variance.
    score_weight, fluctuation_weight:
        The paper's ``ws`` and ``wf`` (Figure 5 sweeps ``wf`` with
        ``ws = 1 - wf``).
    scale_fluctuation:
        If True, the variance term is rescaled so its candidate-set mean
        matches the score term's mean before weighting.
    """

    def __init__(
        self,
        base: QueryStrategy,
        window: int = 3,
        score_weight: float = 0.5,
        fluctuation_weight: float = 0.5,
        scale_fluctuation: bool = False,
    ) -> None:
        super().__init__(base, window=window)
        if score_weight < 0 or fluctuation_weight < 0:
            raise ConfigurationError(
                f"weights must be non-negative, got ws={score_weight}, "
                f"wf={fluctuation_weight}"
            )
        if score_weight == 0 and fluctuation_weight == 0:
            raise ConfigurationError("at least one FHS weight must be positive")
        self.score_weight = score_weight
        self.fluctuation_weight = fluctuation_weight
        self.scale_fluctuation = scale_fluctuation

    @property
    def name(self) -> str:
        return f"FHS({self.base.name})"

    def scores(self, model, context: SelectionContext) -> np.ndarray:
        current = self.base_scores(model, context)
        fluctuation = context.history.fluctuation(context.unlabeled, self.window)
        if self.scale_fluctuation:
            fluct_mean = float(fluctuation.mean())
            if fluct_mean > 0:
                fluctuation = fluctuation * (abs(float(current.mean())) / fluct_mean)
        return self.score_weight * current + self.fluctuation_weight * fluctuation

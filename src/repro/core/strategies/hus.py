"""Historical baselines of Davy & Luz (2007): HUS and HKLD.

HUS ("History Uncertainty Sampling") scores each sample with the plain,
*unweighted* sum of its last ``k`` evaluation results — the closest prior
work to WSHS, which the paper's experiments show barely improves on the
base strategy because early and recent scores get equal weight.

HKLD builds a committee out of the models trained in the last ``k``
iterations and selects samples by the average KL divergence between the
members' predictions and their mean — the committee varies over *time*
rather than over bootstrap resamples.
"""

from __future__ import annotations

import numpy as np

from ...exceptions import ConfigurationError, StrategyError
from ...models.base import Classifier
from .base import (
    HistoryAwareStrategy,
    QueryStrategy,
    SelectionContext,
    register_strategy,
)


@register_strategy("hus")
class HUS(HistoryAwareStrategy):
    """Unweighted sum of the last ``window`` evaluation scores."""

    @property
    def name(self) -> str:
        return f"HUS({self.base.name})"

    def scores(self, model, context: SelectionContext) -> np.ndarray:
        self.base_scores(model, context)
        window = context.history.window_matrix(context.unlabeled, self.window)
        return np.nansum(window, axis=1)


@register_strategy("hkld")
class HKLD(QueryStrategy):
    """Average KL disagreement of the models from the last ``k`` rounds.

    Parameters
    ----------
    committee_size:
        How many recent models form the committee (the loop retains this
        many because of :attr:`requires_model_history`).
    """

    def __init__(self, committee_size: int = 3) -> None:
        if committee_size < 2:
            raise ConfigurationError(
                f"committee_size must be >= 2, got {committee_size}"
            )
        self.committee_size = committee_size

    @property
    def requires_model_history(self) -> int:  # type: ignore[override]
        return self.committee_size

    @property
    def name(self) -> str:
        return f"HKLD(k={self.committee_size})"

    def scores(self, model, context: SelectionContext) -> np.ndarray:
        if not isinstance(model, Classifier):
            raise StrategyError(f"HKLD cannot score a {type(model).__name__}")
        committee = list(context.model_history[-self.committee_size :])
        if model is not (committee[-1] if committee else None):
            committee.append(model)
        if len(committee) < 2:
            # First round: no history yet, fall back to the current model's
            # own uncertainty so the run can bootstrap.
            probabilities = context.probabilities(model)
            clipped = np.clip(probabilities, 1e-12, None)
            return -(clipped * np.log(clipped)).sum(axis=1)
        stacked = np.stack(
            [member.predict_proba(context.candidates) for member in committee]
        )
        consensus = stacked.mean(axis=0)
        ratio = np.log(np.clip(stacked, 1e-12, None) / np.clip(consensus, 1e-12, None))
        return (stacked * ratio).sum(axis=2).mean(axis=0)

"""Uncertainty-based query strategies: Entropy, Least Confidence, Margin.

Eq. (3) and (4) of the paper for classifiers.  For sequence labelers the
same quantities are computed the way the NER literature does: entropy is
the mean token-marginal entropy, and least confidence is one minus the
probability of the whole Viterbi path — which is exactly the
length-biased score that MNLP (Eq. 13) later normalises.
"""

from __future__ import annotations

import numpy as np

from ...models.base import Classifier, SequenceLabeler
from ...exceptions import StrategyError
from .base import (
    QueryStrategy,
    SelectionContext,
    distribution_entropy,
    register_strategy,
)


@register_strategy("entropy")
class Entropy(QueryStrategy):
    """Predictive-distribution entropy (Eq. 4)."""

    model_only_scores = True

    @property
    def name(self) -> str:
        return "Entropy"

    def scores(self, model, context: SelectionContext) -> np.ndarray:
        if isinstance(model, Classifier):
            return distribution_entropy(context.probabilities(model))
        if isinstance(model, SequenceLabeler):
            marginals = context.token_marginals(model)
            return np.array(
                [float(distribution_entropy(m).mean()) for m in marginals]
            )
        raise StrategyError(f"Entropy cannot score a {type(model).__name__}")


@register_strategy("lc")
class LeastConfidence(QueryStrategy):
    """1 - probability of the most likely prediction (Eq. 3)."""

    model_only_scores = True

    @property
    def name(self) -> str:
        return "LC"

    def scores(self, model, context: SelectionContext) -> np.ndarray:
        if isinstance(model, Classifier):
            return 1.0 - context.probabilities(model).max(axis=1)
        if isinstance(model, SequenceLabeler):
            return 1.0 - np.exp(context.best_path_log_proba(model))
        raise StrategyError(f"LC cannot score a {type(model).__name__}")


@register_strategy("margin")
class Margin(QueryStrategy):
    """1 - (top probability - runner-up probability); classifiers only."""

    model_only_scores = True

    @property
    def name(self) -> str:
        return "Margin"

    def scores(self, model, context: SelectionContext) -> np.ndarray:
        if not isinstance(model, Classifier):
            raise StrategyError(f"Margin cannot score a {type(model).__name__}")
        probabilities = np.sort(context.probabilities(model), axis=1)
        return 1.0 - (probabilities[:, -1] - probabilities[:, -2])

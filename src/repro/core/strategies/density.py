"""Density-weighted representative sampling (Eq. 7).

Multiplies an informative base score by the sample's average cosine
similarity to the unlabeled pool, down-weighting outliers.  Similarity
uses L2-normalised bag-of-words (classification) or bag-of-tokens (NER)
vectors; because rows are unit-normalised, the mean similarity of sample
``i`` to the pool is just ``f_i . mean(f)``, so no pairwise matrix is
materialised.
"""

from __future__ import annotations

import numpy as np

from ...data.datasets import SequenceDataset, TextDataset
from ...exceptions import ConfigurationError
from .base import QueryStrategy, SelectionContext, register_strategy


def _unit_rows(matrix: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    return np.divide(matrix, norms, out=np.zeros_like(matrix), where=norms > 0)


def candidate_vectors(dataset: "TextDataset | SequenceDataset") -> np.ndarray:
    """Unit-normalised token-count vectors for similarity computations."""
    if isinstance(dataset, TextDataset):
        return _unit_rows(dataset.bag_of_words(normalize=False))
    matrix = np.zeros((len(dataset), len(dataset.vocab)))
    for row, sentence in enumerate(dataset.sentences):
        np.add.at(matrix[row], sentence, 1.0)
    return _unit_rows(matrix)


@register_strategy("density")
class DensityWeighted(QueryStrategy):
    """``phi_S(x) * mean_similarity(x, U)``.

    Parameters
    ----------
    base:
        The informative strategy providing ``phi_S``.
    beta:
        Exponent on the density term (1.0 reproduces Eq. 7).
    """

    def __init__(self, base: QueryStrategy, beta: float = 1.0) -> None:
        if beta < 0:
            raise ConfigurationError(f"beta must be non-negative, got {beta}")
        self.base = base
        self.beta = beta

    @property
    def name(self) -> str:
        return f"Density({self.base.name})"

    def scores(self, model, context: SelectionContext) -> np.ndarray:
        base_scores = np.asarray(self.base.scores(model, context), dtype=np.float64)
        vectors = candidate_vectors(context.candidates)
        density = vectors @ vectors.mean(axis=0)
        density = np.clip(density, 0.0, None)
        return base_scores * density**self.beta

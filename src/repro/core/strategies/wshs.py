"""WSHS: Weighted Sum of the Historical Sequence (Sec. 4.2, Eq. 9-10).

The first proposed strategy.  The score of a sample is the exponentially
weighted sum of its windowed historical evaluation sequence: the current
score has weight 1, the previous one 1/2, then 1/4, ...  With
``window=1`` this degrades exactly to the wrapped base strategy, which
the tests assert.
"""

from __future__ import annotations

import numpy as np

from .base import HistoryAwareStrategy, SelectionContext, register_strategy


@register_strategy("wshs")
class WSHS(HistoryAwareStrategy):
    """Exponentially decaying weighted history sum around any base."""

    @property
    def name(self) -> str:
        return f"WSHS({self.base.name})"

    def scores(self, model, context: SelectionContext) -> np.ndarray:
        self.base_scores(model, context)
        return context.history.weighted_sum(context.unlabeled, self.window)

"""Per-round memoisation of model forward passes.

One active-learning round runs the same fitted model over the same
datasets several times: ``evaluate_model`` decodes the test split,
strategy scoring reads probabilities or marginals on the candidate pool,
and multi-pass strategies (BALD, QBC, combined scores) revisit the same
predictions.  :class:`PredictionCache` keys each forward pass by
``(kind, model identity, dataset identity)`` so every pass happens once
per round; :class:`~repro.core.loop.ActiveLearningLoop` clears it when a
new model is fitted.

Identity is ``id()`` with the model/dataset objects pinned inside the
cache entry, so an id cannot be recycled while its entry is alive.  The
pins are also why the cache must be cleared per round — entries would
otherwise keep every round's model reachable.

For CRF-output labelers that expose ``emissions(dataset)``
(:class:`~repro.models.crf.LinearChainCRF`,
:class:`~repro.models.bilstm_crf.BiLSTMCRF`), the emission matrices are
cached once and shared by Viterbi decoding, path log-probabilities, and
token marginals, so e.g. span-F1 evaluation plus an MNLP score reuse the
same encoder pass.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from ..data.datasets import SequenceDataset, TextDataset
from ..models.base import Classifier, SequenceLabeler


class PredictionCache:
    """Memoise deterministic forward passes within one AL round.

    Stochastic passes (MC-dropout draws) are never cached — they must
    consume the round RNG exactly as often as the uncached code would.
    """

    def __init__(self) -> None:
        self._store: dict = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        """Drop all entries (and the model/dataset pins keeping them alive)."""
        self._store.clear()

    def _memo(self, kind: str, model, dataset, compute: Callable):
        key = (kind, id(model), id(dataset))
        if key in self._store:
            self.hits += 1
            return self._store[key][2]
        self.misses += 1
        value = compute()
        self._store[key] = (model, dataset, value)
        return value

    # -- classifier passes -------------------------------------------------

    def predict_proba(self, model: Classifier, dataset: TextDataset) -> np.ndarray:
        """Cached ``model.predict_proba(dataset)``."""
        return self._memo(
            "proba", model, dataset, lambda: model.predict_proba(dataset)
        )

    def predict(self, model: Classifier, dataset: TextDataset) -> np.ndarray:
        """Argmax classes, derived from the cached probability matrix."""
        return self._memo(
            "predict",
            model,
            dataset,
            lambda: self.predict_proba(model, dataset).argmax(axis=1),
        )

    # -- sequence-labeler passes -------------------------------------------

    def _emissions(self, model: SequenceLabeler, dataset: SequenceDataset):
        """Cached emission matrices, or ``None`` if the model has none."""
        if not hasattr(model, "emissions"):
            return None
        return self._memo(
            "emissions", model, dataset, lambda: model.emissions(dataset)
        )

    def predict_tags(
        self, model: SequenceLabeler, dataset: SequenceDataset
    ) -> list[np.ndarray]:
        """Cached Viterbi decode, sharing cached emissions when available."""
        emissions = self._emissions(model, dataset)
        if emissions is None:
            compute = lambda: model.predict_tags(dataset)  # noqa: E731
        else:
            compute = lambda: model.predict_tags(dataset, emissions=emissions)  # noqa: E731
        return self._memo("tags", model, dataset, compute)

    def best_path_log_proba(
        self, model: SequenceLabeler, dataset: SequenceDataset
    ) -> np.ndarray:
        """Cached Viterbi-path log-probabilities, sharing cached emissions."""
        emissions = self._emissions(model, dataset)
        if emissions is None:
            compute = lambda: model.best_path_log_proba(dataset)  # noqa: E731
        else:
            compute = lambda: model.best_path_log_proba(  # noqa: E731
                dataset, emissions=emissions
            )
        return self._memo("logp", model, dataset, compute)

    def token_marginals(
        self, model: SequenceLabeler, dataset: SequenceDataset
    ) -> list[np.ndarray]:
        """Cached token marginals, sharing cached emissions when available."""
        emissions = self._emissions(model, dataset)
        if emissions is None:
            compute = lambda: model.token_marginals(dataset)  # noqa: E731
        else:
            compute = lambda: model.token_marginals(  # noqa: E731
                dataset, emissions=emissions
            )
        return self._memo("marginals", model, dataset, compute)

"""Round-scoped memoisation of model forward passes.

One active-learning round runs the same fitted model over the same
datasets several times: ``evaluate_model`` decodes the test split,
strategy scoring reads probabilities or marginals on the candidate pool,
and multi-pass strategies (BALD, QBC, combined scores) revisit the same
predictions.  :class:`PredictionCache` keys each forward pass by
``(kind, model identity, model fit generation, dataset identity)`` so
every pass happens once.

Identity is ``id()`` with the model/dataset objects pinned inside the
cache entry, so an id cannot be recycled while its entry is alive.  The
fit generation (see :func:`repro.models.base.fit_generation`) guards
against in-place refits: warm-started or ``set_params``-restored models
mutate their parameters without changing identity, and the bumped
counter makes any entry from the previous fit unreachable.  That
pinning is also why entries must not live forever: each entry is tagged
with the round it was inserted in, and
:class:`~repro.core.session.SessionEngine` calls :meth:`advance_round`
when a new model is fitted — evicting entries older than
``keep_rounds`` rounds instead of clearing wholesale.  With the default
``keep_rounds=1`` that reproduces the historical clear-per-round
behaviour exactly; committee strategies that retain past models can run
with a larger window so the retained models' passes survive alongside
them.

For CRF-output labelers that expose ``emissions(dataset)``
(:class:`~repro.models.crf.LinearChainCRF`,
:class:`~repro.models.bilstm_crf.BiLSTMCRF`), the emission matrices are
cached once and shared by Viterbi decoding, path log-probabilities, and
token marginals, so e.g. span-F1 evaluation plus an MNLP score reuse the
same encoder pass.  Models exposing the fused ``decode()`` additionally
share one Viterbi lattice walk between ``predict_tags`` and
``best_path_log_proba`` — asking for both costs a single decode.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from ..data.datasets import SequenceDataset, TextDataset
from ..models.base import Classifier, SequenceLabeler, fit_generation


class PredictionCache:
    """Memoise deterministic forward passes within a rolling round window.

    Stochastic passes (MC-dropout draws) are never cached — they must
    consume the round RNG exactly as often as the uncached code would.

    Parameters
    ----------
    keep_rounds:
        How many rounds an entry survives after the round it was
        inserted in; ``1`` (default) evicts each round's entries when
        the next round's model is fitted.
    """

    def __init__(self, keep_rounds: int = 1) -> None:
        if keep_rounds < 1:
            raise ValueError(f"keep_rounds must be >= 1, got {keep_rounds}")
        self._store: dict = {}
        self._round = 0
        self.keep_rounds = keep_rounds
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        """Drop all entries (and the model/dataset pins keeping them alive)."""
        self._store.clear()

    def advance_round(self, round_index: int) -> int:
        """Start round ``round_index``: evict entries that aged out.

        An entry inserted in round ``r`` survives while
        ``round_index - r < keep_rounds``.  Returns the number of
        entries evicted.
        """
        self._round = int(round_index)
        cutoff = self._round - self.keep_rounds
        stale = [
            key for key, entry in self._store.items() if entry[3] <= cutoff
        ]
        for key in stale:
            del self._store[key]
        return len(stale)

    def _memo(self, kind: str, model, dataset, compute: Callable):
        key = (kind, id(model), fit_generation(model), id(dataset))
        if key in self._store:
            self.hits += 1
            return self._store[key][2]
        self.misses += 1
        value = compute()
        self._store[key] = (model, dataset, value, self._round)
        return value

    # -- classifier passes -------------------------------------------------

    def predict_proba(self, model: Classifier, dataset: TextDataset) -> np.ndarray:
        """Cached ``model.predict_proba(dataset)``."""
        return self._memo(
            "proba", model, dataset, lambda: model.predict_proba(dataset)
        )

    def predict(self, model: Classifier, dataset: TextDataset) -> np.ndarray:
        """Argmax classes, derived from the cached probability matrix."""
        return self._memo(
            "predict",
            model,
            dataset,
            lambda: self.predict_proba(model, dataset).argmax(axis=1),
        )

    # -- sequence-labeler passes -------------------------------------------

    def _emissions(self, model: SequenceLabeler, dataset: SequenceDataset):
        """Cached emission matrices, or ``None`` if the model has none."""
        if not hasattr(model, "emissions"):
            return None
        return self._memo(
            "emissions", model, dataset, lambda: model.emissions(dataset)
        )

    def _decode(self, model: SequenceLabeler, dataset: SequenceDataset):
        """Cached fused ``(paths, log_probas)``, or ``None`` without it."""
        if not hasattr(model, "decode"):
            return None
        emissions = self._emissions(model, dataset)
        return self._memo(
            "decode",
            model,
            dataset,
            lambda: model.decode(dataset, emissions=emissions),
        )

    def predict_tags(
        self, model: SequenceLabeler, dataset: SequenceDataset
    ) -> list[np.ndarray]:
        """Cached Viterbi decode, sharing emissions and the fused pass."""
        decoded = self._decode(model, dataset)
        if decoded is not None:
            return decoded[0]
        emissions = self._emissions(model, dataset)
        if emissions is None:
            compute = lambda: model.predict_tags(dataset)  # noqa: E731
        else:
            compute = lambda: model.predict_tags(dataset, emissions=emissions)  # noqa: E731
        return self._memo("tags", model, dataset, compute)

    def best_path_log_proba(
        self, model: SequenceLabeler, dataset: SequenceDataset
    ) -> np.ndarray:
        """Cached Viterbi-path log-probabilities via the shared decode."""
        decoded = self._decode(model, dataset)
        if decoded is not None:
            return decoded[1]
        emissions = self._emissions(model, dataset)
        if emissions is None:
            compute = lambda: model.best_path_log_proba(dataset)  # noqa: E731
        else:
            compute = lambda: model.best_path_log_proba(  # noqa: E731
                dataset, emissions=emissions
            )
        return self._memo("logp", model, dataset, compute)

    def token_marginals(
        self, model: SequenceLabeler, dataset: SequenceDataset
    ) -> list[np.ndarray]:
        """Cached token marginals, sharing cached emissions when available."""
        emissions = self._emissions(model, dataset)
        if emissions is None:
            compute = lambda: model.token_marginals(dataset)  # noqa: E731
        else:
            compute = lambda: model.token_marginals(  # noqa: E731
                dataset, emissions=emissions
            )
        return self._memo("marginals", model, dataset, compute)

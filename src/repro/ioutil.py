"""Crash-safe filesystem helpers.

Experiment checkpoints and saved rankers are what a run resumes from, so
a crash in the middle of writing one must never leave a truncated JSON
document behind.  :func:`atomic_write_text` provides the standard
POSIX-safe recipe: write the full content to a temporary file *in the
target directory* (so the rename cannot cross filesystems), then
``os.replace`` it over the destination in one atomic step.  Readers see
either the old complete file or the new complete file, never a partial
write.

``durable=True`` additionally fsyncs the temporary file *before* the
rename and the containing directory *after* it — the ordering that makes
the write survive a machine crash, not just a process crash.  The
distributed work queue uses it for commit markers: a ``done`` marker
must never hit the disk before the checkpoint bytes it vouches for.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path


def fsync_directory(directory: "str | Path") -> None:
    """Flush a directory's entry table to disk (no-op where unsupported).

    After ``os.replace`` the *file* content is safe, but the rename
    itself lives in the directory; fsyncing the directory pins the
    ordering "content durable, then name visible" across a power loss.
    Platforms that cannot fsync a directory (Windows) simply skip it.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_text(path: "str | Path", text: str, durable: bool = False) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    The temporary file is created next to ``path`` and renamed over it
    only after the content has been fully written and the handle closed,
    so a crash mid-write leaves the previous file (if any) untouched.

    With ``durable=True`` the temp file is fsynced before the rename and
    the parent directory after it, so the fsync/rename ordering holds
    even across a machine crash: the name never points at content that
    has not reached the disk.
    """
    path = Path(path)
    handle_fd, temp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(handle_fd, "w") as handle:
            handle.write(text)
            if durable:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(temp_name, path)
        if durable:
            fsync_directory(path.parent)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


def atomic_write_json(path: "str | Path", payload: dict, durable: bool = False) -> None:
    """Serialise ``payload`` and write it via :func:`atomic_write_text`."""
    atomic_write_text(path, json.dumps(payload), durable=durable)


def validate_envelope(
    payload,
    expected_format: str,
    expected_version: int,
    error_cls: type[Exception],
    source: str,
) -> dict:
    """Check a decoded document's ``format``/``version`` envelope.

    All persistent artifacts of this package (rankers, checkpoints,
    session snapshots, stored service sessions) share the same envelope:
    a JSON object with ``format`` and ``version`` keys (see
    :mod:`repro.formats`).  This helper centralises the two payload-side
    failure modes — wrong document kind, unsupported version — raising
    ``error_cls`` (the caller's domain error) with ``source`` naming
    where the document came from (a path, an endpoint, "session
    snapshot", ...).  Returns the payload unchanged on success.
    """
    if not isinstance(payload, dict) or payload.get("format") != expected_format:
        raise error_cls(f"{source} is not a {expected_format!r} document")
    if payload.get("version") != expected_version:
        raise error_cls(
            f"unsupported {expected_format!r} version {payload.get('version')!r} "
            f"in {source} (expected {expected_version})"
        )
    return payload


def check_fingerprint(
    payload: dict,
    expected: dict,
    error_cls: type[Exception],
    source: str,
    hint: str,
) -> None:
    """Refuse a document whose run fingerprint does not match ``expected``.

    Checkpoints and session snapshots embed a fingerprint of the run
    that wrote them (strategy, repeat, seed, config, resolved specs);
    resuming must never silently mix artifacts from different runs, so a
    mismatch raises ``error_cls`` describing both sides.  ``source``
    names the stale document ("checkpoint <path>", "session snapshot
    <path>"); ``hint`` tells the operator how to recover.
    """
    actual = {key: payload.get(key) for key in expected}
    if actual != expected:
        raise error_cls(
            f"stale {source}: it was written by a different run "
            f"(expected {expected}, found {actual}); {hint}"
        )


def read_json_document(
    path: "str | Path",
    expected_format: str,
    expected_version: int,
    error_cls: type[Exception],
) -> dict:
    """Read a versioned JSON document, validating its format marker.

    The file-based front end of :func:`validate_envelope`: reads and
    decodes ``path`` (unreadable file → ``error_cls``), then validates
    the envelope with the path itself as the error source.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise error_cls(f"cannot read {path}: {error}") from error
    return validate_envelope(
        payload, expected_format, expected_version, error_cls, source=str(path)
    )

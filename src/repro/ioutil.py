"""Crash-safe filesystem helpers.

Experiment checkpoints and saved rankers are what a run resumes from, so
a crash in the middle of writing one must never leave a truncated JSON
document behind.  :func:`atomic_write_text` provides the standard
POSIX-safe recipe: write the full content to a temporary file *in the
target directory* (so the rename cannot cross filesystems), then
``os.replace`` it over the destination in one atomic step.  Readers see
either the old complete file or the new complete file, never a partial
write.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path


def atomic_write_text(path: "str | Path", text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    The temporary file is created next to ``path`` and renamed over it
    only after the content has been fully written and the handle closed,
    so a crash mid-write leaves the previous file (if any) untouched.
    """
    path = Path(path)
    handle_fd, temp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(handle_fd, "w") as handle:
            handle.write(text)
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise

"""Command-line interface: run comparisons and train rankers from a shell.

Two subcommands::

    python -m repro compare --dataset mr --scale 0.1 \
        --strategies random entropy wshs:entropy fhs:entropy \
        --rounds 10 --batch-size 25 --repeats 3

    python -m repro train-ranker --dataset subj --scale 0.1 \
        --base entropy --output ranker.json

Strategy specs are ``name`` or ``wrapper:base`` using the registry keys
(``random``, ``entropy``, ``lc``, ``egl``, ``hus``, ``wshs``, ``fhs``,
``mnlp``, ...).  ``lhs:<base>`` needs ``--ranker <file>`` produced by
``train-ranker``.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Callable, Sequence

from .core.ranker_training import RankerTrainingConfig, train_lhs_ranker
from .core.strategies import FHS, HUS, LHS, WSHS, create_strategy
from .data import (
    conll2002_dutch,
    conll2002_spanish,
    conll2003_english,
    mr,
    sst2,
    subj,
    trec,
)
from .exceptions import ConfigurationError, ReproError
from .experiments import ExperimentConfig, RetryPolicy, plot_curves, run_comparison
from .experiments.reporting import format_curve_table, format_target_table
from .models import LinearChainCRF, LinearSoftmax
from .persistence import load_lhs_ranker, save_lhs_ranker

TEXT_DATASETS = {"mr": mr, "sst2": sst2, "subj": subj, "trec": trec}
NER_DATASETS = {
    "conll-en": conll2003_english,
    "conll-es": conll2002_spanish,
    "conll-nl": conll2002_dutch,
}
WRAPPERS = {"hus": HUS, "wshs": WSHS, "fhs": FHS}


def build_strategy_factory(
    spec: str, window: int, ranker_path: "str | None"
) -> Callable[[], object]:
    """Turn a ``name`` / ``wrapper:base`` spec into a strategy factory."""
    wrapper_key, _, base_key = spec.lower().partition(":")
    if not base_key:
        return lambda: create_strategy(wrapper_key)
    if wrapper_key in WRAPPERS:
        wrapper = WRAPPERS[wrapper_key]
        return lambda: wrapper(create_strategy(base_key), window=window)
    if wrapper_key == "lhs":
        if not ranker_path:
            raise ConfigurationError("lhs:<base> requires --ranker <file>")
        ranker = load_lhs_ranker(ranker_path)
        return lambda: LHS(create_strategy(base_key), ranker)
    raise ConfigurationError(f"unknown strategy wrapper {wrapper_key!r}")


def _load_dataset(name: str, scale: float, seed: int):
    key = name.lower()
    if key in TEXT_DATASETS:
        return TEXT_DATASETS[key](scale=scale, seed_or_rng=seed), "text"
    if key in NER_DATASETS:
        return NER_DATASETS[key](scale=scale, seed_or_rng=seed), "ner"
    known = ", ".join(sorted(TEXT_DATASETS) + sorted(NER_DATASETS))
    raise ConfigurationError(f"unknown dataset {name!r}; known: {known}")


def _split(dataset, test_fraction: float):
    cut = int(len(dataset) * (1.0 - test_fraction))
    return dataset.subset(range(cut)), dataset.subset(range(cut, len(dataset)))


def _model_factory(kind: str, epochs: int):
    if kind == "text":
        return lambda: LinearSoftmax(epochs=epochs, batch_size=32, seed=0)
    return lambda: LinearChainCRF(epochs=max(1, epochs // 2), seed=0)


def _cmd_compare(args: argparse.Namespace) -> int:
    if args.resume and not args.checkpoint_dir:
        raise ConfigurationError("--resume requires --checkpoint-dir")
    dataset, kind = _load_dataset(args.dataset, args.scale, args.seed)
    train, test = _split(dataset, args.test_fraction)
    strategies = {
        spec: build_strategy_factory(spec, args.window, args.ranker)
        for spec in args.strategies
    }
    config = ExperimentConfig(
        batch_size=args.batch_size,
        rounds=args.rounds,
        repeats=args.repeats,
        seed=args.seed,
    )
    results = run_comparison(
        _model_factory(kind, args.epochs), strategies, train, test, config=config,
        n_jobs=args.n_jobs,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        retry=RetryPolicy(max_attempts=args.max_retries + 1),
        on_error=args.on_error,
    )
    for result in results.values():
        for failure in result.failures:
            print(
                f"warning: dropped cell ({failure.strategy!r}, repeat "
                f"{failure.repeat}) after {failure.attempts} attempt(s): "
                f"{failure.error}",
                file=sys.stderr,
            )
    curves = {name: result.curve for name, result in results.items()}
    metric = "accuracy" if kind == "text" else "span F1"
    print(format_curve_table(
        curves,
        title=f"{dataset.name}: {metric} vs labeled samples "
              f"(mean over {args.repeats} repeats)",
    ))
    if args.targets:
        print()
        print(format_target_table(curves, targets=args.targets))
    if args.plot:
        print()
        print(plot_curves(curves))
    return 0


def _cmd_train_ranker(args: argparse.Namespace) -> int:
    dataset, kind = _load_dataset(args.dataset, args.scale, args.seed)
    if kind != "text":
        raise ConfigurationError("train-ranker supports text datasets only")
    train, test = _split(dataset, args.test_fraction)
    ranker = train_lhs_ranker(
        LinearSoftmax(epochs=args.epochs, batch_size=32, seed=0),
        train,
        test,
        base=create_strategy(args.base),
        config=RankerTrainingConfig(
            rounds=args.rounds,
            candidates_per_round=args.candidates,
            initial_size=args.batch_size,
            window=args.window,
            predictor=args.predictor if args.predictor != "none" else None,
            eval_size=min(250, len(test)),
        ),
        seed_or_rng=args.seed,
    )
    save_lhs_ranker(ranker, args.output)
    print(
        f"trained LHS ranker on {ranker.training_rows} candidate evaluations "
        f"(base={ranker.base_name}); saved to {args.output}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for --help testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Active learning with historical evaluation results",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub):
        sub.add_argument("--dataset", required=True,
                         help="mr, sst2, subj, trec, conll-en, conll-es, conll-nl")
        sub.add_argument("--scale", type=float, default=0.2,
                         help="dataset size multiplier (default 0.2)")
        sub.add_argument("--test-fraction", type=float, default=0.3)
        sub.add_argument("--batch-size", type=int, default=25)
        sub.add_argument("--rounds", type=int, default=10)
        sub.add_argument("--window", type=int, default=3,
                         help="history window l for WSHS/FHS/HUS")
        sub.add_argument("--epochs", type=int, default=5,
                         help="model training epochs per round")
        sub.add_argument("--seed", type=int, default=7)

    compare = subparsers.add_parser(
        "compare", help="run several query strategies and print their curves"
    )
    add_common(compare)
    compare.add_argument("--strategies", nargs="+", required=True,
                         help="specs like: random entropy wshs:entropy lhs:lc")
    compare.add_argument("--repeats", type=int, default=3)
    compare.add_argument("--n-jobs", type=int, default=1,
                         help="worker processes for (strategy, repeat) cells; "
                              "results are identical to a serial run")
    compare.add_argument("--targets", nargs="*", type=float, default=[],
                         help="also print annotations-to-target for these values")
    compare.add_argument("--ranker", default=None,
                         help="ranker file for lhs:<base> strategies")
    compare.add_argument("--plot", action="store_true",
                         help="also draw the curves as an ASCII chart")
    compare.add_argument("--checkpoint-dir", default=None,
                         help="write each completed (strategy, repeat) cell to "
                              "this directory as a JSON checkpoint; an "
                              "interrupted run can then restart with --resume")
    compare.add_argument("--resume", action="store_true",
                         help="reuse completed cells already checkpointed in "
                              "--checkpoint-dir instead of recomputing them")
    compare.add_argument("--max-retries", type=int, default=0,
                         help="extra attempts for a failing cell before it "
                              "counts as permanently failed (default 0)")
    compare.add_argument("--on-error", choices=["raise", "skip"], default="raise",
                         help="'skip' drops permanently failed cells from the "
                              "averages (with a warning) instead of aborting")
    compare.set_defaults(handler=_cmd_compare)

    train = subparsers.add_parser(
        "train-ranker", help="run Algorithm 1 and save an LHS ranker"
    )
    add_common(train)
    train.add_argument("--base", default="entropy",
                       help="base strategy whose history feeds the features")
    train.add_argument("--candidates", type=int, default=12,
                       help="candidate-set size per round")
    train.add_argument("--predictor", choices=["lstm", "ar", "none"], default="ar")
    train.add_argument("--output", required=True, help="output ranker JSON file")
    train.set_defaults(handler=_cmd_train_ranker)
    return parser


def main(argv: "Sequence[str] | None" = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except KeyboardInterrupt:
        hint = ""
        if getattr(args, "checkpoint_dir", None):
            hint = (
                f"; completed cells are checkpointed in {args.checkpoint_dir} "
                "— rerun with --resume to continue"
            )
        print(f"interrupted{hint}", file=sys.stderr)
        return 130
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())

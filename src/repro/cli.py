"""Command-line interface: run comparisons and train rankers from a shell.

Batch subcommands::

    python -m repro compare --dataset mr --scale 0.1 \
        --strategies random entropy wshs:entropy fhs:entropy \
        --rounds 10 --batch-size 25 --repeats 3

    python -m repro run --config experiment.json
    python -m repro config validate experiment.json
    python -m repro config show --defaults

    python -m repro train-ranker --dataset subj --scale 0.1 \
        --base entropy --output ranker.json

Strategy specs are ``name`` or ``wrapper:base`` using the registry keys
(``random``, ``entropy``, ``lc``, ``egl``, ``hus``, ``wshs``, ``fhs``,
``mnlp``, ...).  ``lhs:<base>`` needs ``--ranker <file>`` produced by
``train-ranker``.

``compare`` flags and a ``run --config`` document are two front ends to
the same :class:`~repro.specs.ExperimentSpec`: the flag parser builds the
identical spec internally, so the two invocations produce byte-identical
results.

The ``session`` family drives one interactive annotation session through
files on disk, for external (human) annotators::

    python -m repro session init --dir run1 --dataset mr --strategy wshs:entropy
    python -m repro session propose --dir run1        # re-print the open batch
    #   ... fill in run1/proposal.json's labels template -> labels.json ...
    python -m repro session ingest --dir run1 --labels labels.json
    python -m repro session status --dir run1

Each ``ingest`` commits the batch, retrains, and proposes the next one
(``--oracle`` answers from the dataset's own labels instead, for smoke
tests).  All state lives in the session directory as plain JSON, so the
machine can be rebooted between any two commands.

The same commands drive sessions hosted on a running session server
(``python -m repro serve``) by swapping ``--dir`` for ``--server`` +
``--session``::

    python -m repro serve --port 8700 --sqlite sessions.db
    python -m repro session init --server http://127.0.0.1:8700 \
        --session s1 --dataset mr --strategy wshs:entropy
    python -m repro session ingest --server http://127.0.0.1:8700 \
        --session s1 --oracle
    python -m repro session result --server http://127.0.0.1:8700 \
        --session s1 --output result.json

Both modes are thin clients of the same service API, so a session driven
over HTTP produces results byte-identical to the file-based workflow.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections.abc import Callable, Sequence
from pathlib import Path

from functools import partial

from .core.ranker_training import RankerTrainingConfig, train_lhs_ranker
from .core.strategies import create_strategy
from .eval.curves import LearningCurve
from .exceptions import (
    ConfigurationError,
    IngestError,
    ReproError,
    ServiceError,
    SessionError,
)
from .experiments import ExperimentConfig, plot_curves
from .experiments.distributed import run_worker
from .experiments.reporting import (
    accumulate_phase_times,
    format_curve_table,
    format_metric_table,
    format_phase_times,
    format_sweep_matrix,
    format_target_table,
)
from .experiments.sweep import (
    cell_directories,
    execute_experiment,
    metric_matrices,
    run_sweep,
)
from .formats import (
    SESSION_DIR_FORMAT,
    SESSION_DIR_VERSION,
    SESSION_RESULT_FORMAT,
    SESSION_RESULT_VERSION,
)
from .ioutil import atomic_write_json, validate_envelope
from .models import LinearSoftmax
from .persistence import save_lhs_ranker
from .service import (
    JsonSessionStore,
    MemorySessionStore,
    SessionClient,
    SessionService,
    SqliteSessionStore,
    make_server,
)
from .specs import (
    ExperimentSpec,
    Spec,
    SweepSpec,
    build_dataset,
    build_model,
    build_split,
    build_strategy,
    default_experiment_spec,
    default_model_spec,
    parse_strategy_shorthand,
)


def build_strategy_factory(
    spec: str, window: int, ranker_path: "str | None"
) -> Callable[[], object]:
    """Turn a ``name`` / ``wrapper:base`` spec into a strategy factory.

    Thin shim over :func:`repro.specs.parse_strategy_shorthand` +
    :func:`repro.specs.build_strategy`; the returned factory is a
    picklable partial over pure spec data.
    """
    parsed = parse_strategy_shorthand(spec, window=window, ranker_path=ranker_path)
    return partial(build_strategy, parsed.to_dict())


def _load_dataset(name: str, scale: float, seed: int):
    """Build ``(dataset, task)`` from CLI flags (shim over dataset specs)."""
    return build_dataset(Spec(kind=name, params={"scale": scale, "seed": seed}))


def _split(dataset, test_fraction: float):
    """Head/tail train-test split (shim over the ``fraction`` split spec)."""
    return build_split(
        Spec(kind="fraction", params={"test_fraction": test_fraction}), dataset
    )


def _model_factory(kind: str, epochs: int):
    """The default model factory for a task family (shim over model specs)."""
    return partial(build_model, default_model_spec(kind, epochs).to_dict())


def _experiment_from_flags(args: argparse.Namespace) -> ExperimentSpec:
    """The ``compare`` flag set as a declarative experiment document.

    ``repro run --config`` executes the same :class:`ExperimentSpec`, so
    flags and config files are interchangeable front ends.
    """
    spec = ExperimentSpec(
        dataset=Spec(kind=args.dataset, params={"scale": args.scale, "seed": args.seed}),
        split=Spec(kind="fraction", params={"test_fraction": args.test_fraction}),
        strategies={
            text: parse_strategy_shorthand(text, args.window, args.ranker)
            for text in args.strategies
        },
        config=ExperimentConfig(
            batch_size=args.batch_size,
            rounds=args.rounds,
            repeats=args.repeats,
            seed=args.seed,
            history_backend=args.history_backend,
            training_mode=args.training_mode,
        ),
        runner={
            "n_jobs": args.n_jobs,
            "checkpoint_dir": args.checkpoint_dir,
            "resume": args.resume,
            "max_retries": args.max_retries,
            "backoff": args.backoff,
            "on_error": args.on_error,
            "queue_dir": args.queue_dir,
            "queue_backend": args.queue_backend,
            "local_workers": args.local_workers,
            "lease_ttl": args.lease_ttl,
            "timeout": args.grid_timeout,
        },
        report={"targets": list(args.targets), "plot": args.plot},
    )
    spec.model = default_model_spec(spec.task, args.epochs)
    return spec


def _print_report(spec: ExperimentSpec, results: dict, train, task: str) -> None:
    """Print one experiment's report (warnings and timings to stderr)."""
    for result in results.values():
        for failure in result.failures:
            print(
                f"warning: dropped cell ({failure.strategy!r}, repeat "
                f"{failure.repeat}) after {failure.attempts} attempt(s): "
                f"{failure.error}",
                file=sys.stderr,
            )
    # Phase wall-times go to stderr: stdout stays byte-comparable across
    # runs (the CI smokes diff it), and timings never are.
    phase_totals = {}
    for name, result in results.items():
        run_totals = [
            totals
            for run in result.runs
            if (totals := accumulate_phase_times(run.records)) is not None
        ]
        if run_totals:
            phase_totals[name] = {
                phase: sum(t.get(phase, 0.0) for t in run_totals)
                for phase in ("train", "evaluate", "propose", "ingest")
            }
    if phase_totals:
        print(
            format_phase_times(
                phase_totals,
                title=f"phase wall-times over {spec.config.repeats} repeat(s), "
                      f"training_mode={spec.config.training_mode}",
            ),
            file=sys.stderr,
        )
    curves = {name: result.curve for name, result in results.items()}
    metric = "accuracy" if task == "text" else "span F1"
    print(format_curve_table(
        curves,
        title=f"{train.name}: {metric} vs labeled samples "
              f"(mean over {spec.config.repeats} repeats)",
    ))
    if spec.report["targets"]:
        print()
        print(format_target_table(curves, targets=spec.report["targets"]))
    if spec.report["plot"]:
        print()
        print(plot_curves(curves))


def _run_experiment(spec: ExperimentSpec) -> int:
    """Execute one experiment document and print its report."""
    results, train, _test, task = execute_experiment(spec)
    _print_report(spec, results, train, task)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    if args.resume and not args.checkpoint_dir:
        raise ConfigurationError("--resume requires --checkpoint-dir")
    return _run_experiment(_experiment_from_flags(args))


def _cmd_run(args: argparse.Namespace) -> int:
    return _run_experiment(ExperimentSpec.from_file(args.config))


def _cmd_sweep_run(args: argparse.Namespace) -> int:
    """Execute every cell of a sweep document and print matrix reports."""
    sweep = SweepSpec.from_file(args.file)
    cells = sweep.cells()
    if len(cells) == 1 and cells[0].document == sweep.base:
        # Degenerate 1x1 sweep with no perturbations: run the base
        # document through the exact 'repro run --config' path, so the
        # output is byte-identical to it (the contract sweep semantics
        # are anchored on).
        spec = cells[0].spec
        if args.sweep_dir:
            checkpoint_dir, _queue = cell_directories(args.sweep_dir, cells[0])
            checkpoint_dir.mkdir(parents=True, exist_ok=True)
            spec.runner["checkpoint_dir"] = str(checkpoint_dir)
            if args.resume:
                spec.runner["resume"] = True
        return _run_experiment(spec)
    total = len(cells)
    progress = {"done": 0}

    def on_cell(result, train) -> None:
        progress["done"] += 1
        print(f"=== cell {result.cell.key} ({progress['done']}/{total}) ===")
        _print_report(result.cell.spec, result.results, train, result.task)
        print()
        print(format_metric_table(
            result.metrics, title=f"metrics: {result.cell.key}"
        ))
        print()

    outcome = run_sweep(
        sweep, sweep_dir=args.sweep_dir, resume=args.resume, on_cell=on_cell
    )
    for matrix in metric_matrices(outcome):
        corner = (
            f"{matrix['row_axis']} \\ {matrix['col_axis']}"
            if matrix["row_axis"]
            else matrix["col_axis"]
        )
        print(format_sweep_matrix(
            matrix["values"],
            matrix["rows"],
            matrix["cols"],
            corner=corner,
            title=f"{matrix['metric']} [{matrix['strategy']}] across the grid",
        ))
        print()
    return 0


def _cmd_sweep_validate(args: argparse.Namespace) -> int:
    sweep = SweepSpec.from_file(args.file)
    for note in sweep.validate():
        print(note)
    print(f"{args.file}: valid sweep document")
    return 0


def _cmd_sweep_show(args: argparse.Namespace) -> int:
    sweep = SweepSpec.from_file(args.file)
    if args.cells:
        for cell in sweep.cells():
            print(f"=== cell {cell.key or '(degenerate)'} [{cell.slug}] ===")
            print(json.dumps(cell.document, indent=2))
        return 0
    print(json.dumps(sweep.to_dict(), indent=2))
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    """Join a distributed grid: claim, execute, and commit cells."""

    def report(event: str, cell_id: str) -> None:
        if event != "heartbeat":  # one line per renewal would be noise
            print(f"worker: {event} {cell_id}", file=sys.stderr)

    summary = run_worker(
        args.queue_dir,
        owner=args.owner,
        poll=args.poll,
        max_cells=args.max_cells,
        on_event=report if args.verbose else None,
    )
    print(
        f"worker {summary['owner']}: {summary['completed']} cell(s) completed "
        f"({summary['recovered']} recovered from dead workers), "
        f"{summary['failed']} attempt(s) failed"
    )
    return 0


def _cmd_config_validate(args: argparse.Namespace) -> int:
    spec = ExperimentSpec.from_file(args.file)
    for note in spec.validate():
        print(note)
    print(f"{args.file}: valid experiment document")
    return 0


def _cmd_config_show(args: argparse.Namespace) -> int:
    if args.file:
        spec = ExperimentSpec.from_file(args.file)
    elif args.defaults:
        spec = default_experiment_spec()
    else:
        raise ConfigurationError("pass --defaults or a config file to show")
    print(json.dumps(spec.to_dict(), indent=2))
    return 0


def _cmd_train_ranker(args: argparse.Namespace) -> int:
    dataset, kind = _load_dataset(args.dataset, args.scale, args.seed)
    if kind != "text":
        raise ConfigurationError("train-ranker supports text datasets only")
    train, test = _split(dataset, args.test_fraction)
    ranker = train_lhs_ranker(
        LinearSoftmax(epochs=args.epochs, batch_size=32, seed=0),
        train,
        test,
        base=create_strategy(args.base),
        config=RankerTrainingConfig(
            rounds=args.rounds,
            candidates_per_round=args.candidates,
            initial_size=args.batch_size,
            window=args.window,
            predictor=args.predictor if args.predictor != "none" else None,
            eval_size=min(250, len(test)),
        ),
        seed_or_rng=args.seed,
    )
    save_lhs_ranker(ranker, args.output)
    print(
        f"trained LHS ranker on {ranker.training_rows} candidate evaluations "
        f"(base={ranker.base_name}); saved to {args.output}"
    )
    return 0


# -- interactive annotation sessions -----------------------------------------

#: Session id of the single session a ``--dir`` directory holds; its
#: document is ``<dir>/session.json``, the exact file the pre-service
#: CLI wrote.
_DIR_SESSION_ID = "session"


def _session_file(directory: "str | Path") -> Path:
    """The session document inside a ``--dir`` session directory."""
    return Path(directory) / "session.json"


def _proposal_file(directory: "str | Path") -> Path:
    """The annotator-facing proposal file of a session directory."""
    return Path(directory) / "proposal.json"


def _result_file(directory: "str | Path") -> Path:
    """The finished audit-trail file of a session directory."""
    return Path(directory) / "result.json"


def _session_client(args: argparse.Namespace) -> "tuple[SessionClient, str, Path | None]":
    """Resolve a session subcommand to ``(client, session_id, directory)``.

    The session CLI is a thin client of the AL service in both modes:
    ``--dir`` builds an in-process service over a
    :class:`~repro.service.JsonSessionStore` rooted at the directory
    (session id ``"session"`` — the stored ``session.json`` is
    byte-identical to the pre-service layout), while ``--server`` speaks
    HTTP to a running ``repro serve`` (``directory`` is ``None`` there).
    """
    directory = getattr(args, "dir", None)
    server = getattr(args, "server", None)
    if (directory is None) == (server is None):
        raise ConfigurationError("pass exactly one of --dir <directory> or --server <url>")
    if server is not None:
        session_id = getattr(args, "session", None)
        if not session_id:
            raise ConfigurationError("--server mode needs --session <id>")
        return SessionClient.http(server), session_id, None
    service = SessionService({"json": JsonSessionStore(directory)})
    return SessionClient.in_process(service), _DIR_SESSION_ID, Path(directory)


def _missing_session_error(directory: "Path | None", error: ServiceError) -> ReproError:
    """Translate the service's 404 into a directory-mode hint."""
    if directory is not None and getattr(error, "status", None) == 404:
        return SessionError(
            f"no session in {directory} (missing {_session_file(directory)}); "
            f"run 'repro session init --dir {directory}' first"
        )
    return error


def _result_envelope(payload: dict) -> dict:
    """Wrap a service result payload in the on-disk audit-trail envelope."""
    return {
        "format": SESSION_RESULT_FORMAT,
        "version": SESSION_RESULT_VERSION,
        "result": payload["result"],
    }


def _render_finished(response: dict, directory: "Path | None") -> int:
    """Report a finished session (write ``result.json`` in ``--dir`` mode)."""
    recipe = response.get("recipe", {})
    print(f"session finished after {response['round']} rounds")
    counts = [point[0] for point in response["curve"]]
    values = [point[1] for point in response["curve"]]
    print(format_curve_table(
        {recipe.get("strategy", "session"): LearningCurve(counts, values)},
        title=f"{recipe.get('dataset', 'session')}: metric vs labeled samples",
    ))
    if directory is not None:
        atomic_write_json(_result_file(directory), _result_envelope(response))
        _proposal_file(directory).unlink(missing_ok=True)
        print(f"full audit trail written to {_result_file(directory)}")
    else:
        print(
            "fetch the audit trail with: repro session result "
            f"--server <url> --session {response['id']} --output <file>"
        )
    return 0


def _render_proposal(
    response: dict, directory: "Path | None", output: "str | None" = None
) -> int:
    """Persist/print the pending batch the way annotators consume it."""
    proposal = {
        "round": response["round"],
        "indices": response["indices"],
        "samples": response["samples"],
        # Copy into a labels file, replace the nulls, pass to ingest.
        "labels_template": response["labels_template"],
    }
    if directory is not None:
        atomic_write_json(_proposal_file(directory), proposal)
        print(
            f"round {response['round']}: {len(response['indices'])} samples "
            f"await labels (see {_proposal_file(directory)})"
        )
        print(
            "label them with: repro session ingest --dir "
            f"{directory} --labels <file>  (or --oracle)"
        )
    elif output:
        atomic_write_json(Path(output), proposal)
        print(
            f"round {response['round']}: {len(response['indices'])} samples "
            f"await labels (written to {output})"
        )
    else:
        print(json.dumps(proposal, indent=2))
    return 0


def _advance_session(
    client: SessionClient,
    session_id: str,
    directory: "Path | None",
    output: "str | None" = None,
) -> int:
    """Drive the session to its next proposal (or the end) and render it."""
    response = client.propose(session_id)
    if response.get("finished"):
        return _render_finished(response, directory)
    return _render_proposal(response, directory, output)


def _cmd_session_init(args: argparse.Namespace) -> int:
    recipe = {
        "dataset": args.dataset,
        "scale": args.scale,
        "test_fraction": args.test_fraction,
        "strategy": args.strategy,
        "window": args.window,
        "epochs": args.epochs,
        "batch_size": args.batch_size,
        "rounds": args.rounds,
        "initial_size": args.initial_size,
        "seed": args.seed,
        "ranker": args.ranker,
        "training_mode": args.training_mode,
    }
    directory = getattr(args, "dir", None)
    server = getattr(args, "server", None)
    if (directory is None) == (server is None):
        raise ConfigurationError("pass exactly one of --dir <directory> or --server <url>")
    if directory is not None:
        directory = Path(directory)
        if _session_file(directory).exists():
            raise ConfigurationError(
                f"{_session_file(directory)} already exists; use "
                "'repro session propose/ingest/status' to continue it"
            )
        service = SessionService({"json": JsonSessionStore(directory)})
        client = SessionClient.in_process(service)
        response = client.create(recipe, session_id=_DIR_SESSION_ID)
        where = str(directory)
    else:
        client = SessionClient.http(server)
        # --session is optional on init: the server generates an id.
        response = client.create(
            recipe,
            session_id=getattr(args, "session", None),
            store=getattr(args, "store", None),
        )
        where = f"{response['id']} on {server}"
    print(
        f"initialised session in {where}: {recipe['strategy']} on "
        f"{recipe['dataset']} ({response['n_train']} pool / "
        f"{response['n_test']} test samples)"
    )
    return _advance_session(client, response["id"], directory, getattr(args, "output", None))


def _cmd_session_propose(args: argparse.Namespace) -> int:
    client, session_id, directory = _session_client(args)
    try:
        return _advance_session(client, session_id, directory, getattr(args, "output", None))
    except ServiceError as error:
        raise _missing_session_error(directory, error)


def _cmd_session_ingest(args: argparse.Namespace) -> int:
    if (args.labels is None) == (not args.oracle):
        raise ConfigurationError("pass exactly one of --labels <file> or --oracle")
    client, session_id, directory = _session_client(args)
    if args.oracle:
        indices, labels = None, None
    else:
        try:
            payload = json.loads(Path(args.labels).read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise IngestError(f"cannot read labels file {args.labels}: {error}")
        mapping = payload.get("labels", payload) if isinstance(payload, dict) else None
        if not isinstance(mapping, dict):
            raise IngestError(
                f"{args.labels} must hold a JSON object mapping sample index "
                "to label (the proposal's labels_template, filled in)"
            )
        unfilled = sorted(key for key, value in mapping.items() if value is None)
        if unfilled:
            raise IngestError(
                f"labels file {args.labels} still has null labels for "
                f"indices {unfilled[:5]}"
            )
        indices = [int(key) for key in mapping]
        labels = [mapping[key] for key in mapping]
    try:
        response = client.ingest(
            session_id, indices=indices, labels=labels, oracle=args.oracle
        )
    except ServiceError as error:
        raise _missing_session_error(directory, error)
    print(f"ingested labels; committed round {response['round']}, retraining...")
    return _advance_session(client, session_id, directory, getattr(args, "output", None))


def _print_status(recipe: dict, snapshot: dict) -> int:
    """Print one session's state from its recipe + snapshot document."""
    pending = snapshot["pending"]
    print(f"dataset:  {recipe['dataset']} (scale {recipe['scale']})")
    print(f"strategy: {snapshot['config']['strategy']}")
    print(f"state:    {snapshot['state']}")
    print(
        f"round:    {snapshot['round_index']} of {snapshot['config']['rounds']}"
    )
    print(f"labeled:  {len(snapshot['pool']['labeled'])} of {snapshot['pool']['n']}")
    if pending is not None:
        print(f"pending:  {len(pending)} samples awaiting labels")
    for record in snapshot["records"]:
        print(
            f"  round {record['round_index']:>3}: metric "
            f"{record['metric']:.4f} at {record['labeled_count']} labels"
        )
    return 0


def _cmd_session_status(args: argparse.Namespace) -> int:
    directory = getattr(args, "dir", None)
    if directory is not None:
        # Status only reads the stored document; it never rebuilds
        # datasets/models, so it answers instantly even for huge pools.
        row = JsonSessionStore(directory).load(_DIR_SESSION_ID)
        if row is None:
            raise SessionError(
                f"no session in {directory} (missing {_session_file(directory)}); "
                f"run 'repro session init --dir {directory}' first"
            )
        payload = validate_envelope(
            row.document,
            SESSION_DIR_FORMAT,
            SESSION_DIR_VERSION,
            SessionError,
            source=str(_session_file(directory)),
        )
        return _print_status(payload["recipe"], payload["session"])
    client, session_id, _directory = _session_client(args)
    try:
        response = client.status(session_id)
    except ServiceError as error:
        raise _missing_session_error(None, error)
    return _print_status(response["recipe"], response["session"])


def _cmd_session_result(args: argparse.Namespace) -> int:
    client, session_id, directory = _session_client(args)
    try:
        response = client.result(session_id)
    except ServiceError as error:
        raise _missing_session_error(directory, error)
    envelope = _result_envelope(response)
    if args.output:
        atomic_write_json(Path(args.output), envelope)
        print(f"full audit trail written to {args.output}")
    else:
        print(json.dumps(envelope, indent=2))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the AL session server until interrupted."""
    stores = {}
    if args.json_dir:
        stores["json"] = JsonSessionStore(args.json_dir)
    if args.sqlite:
        stores["sqlite"] = SqliteSessionStore(args.sqlite)
    if not stores:
        # No durable store requested: host sessions in memory (they die
        # with the process — fine for demos and tests).
        stores["memory"] = MemorySessionStore()
    service = SessionService(stores, default_store=args.default_store)
    server = make_server(service, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    print(
        f"serving AL sessions on http://{host}:{port} "
        f"(stores: {', '.join(sorted(stores))}; default {service.default_store})",
        flush=True,
    )
    try:
        server.serve_forever()
    finally:
        server.server_close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for --help testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Active learning with historical evaluation results",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub):
        sub.add_argument("--dataset", required=True,
                         help="mr, sst2, subj, trec, conll-en, conll-es, conll-nl")
        sub.add_argument("--scale", type=float, default=0.2,
                         help="dataset size multiplier (default 0.2)")
        sub.add_argument("--test-fraction", type=float, default=0.3)
        sub.add_argument("--batch-size", type=int, default=25)
        sub.add_argument("--rounds", type=int, default=10)
        sub.add_argument("--window", type=int, default=3,
                         help="history window l for WSHS/FHS/HUS")
        sub.add_argument("--epochs", type=int, default=5,
                         help="model training epochs per round")
        sub.add_argument("--seed", type=int, default=7)

    compare = subparsers.add_parser(
        "compare", help="run several query strategies and print their curves"
    )
    add_common(compare)
    compare.add_argument("--strategies", nargs="+", required=True,
                         help="specs like: random entropy wshs:entropy lhs:lc")
    compare.add_argument("--repeats", type=int, default=3)
    compare.add_argument("--n-jobs", type=int, default=1,
                         help="worker processes for (strategy, repeat) cells; "
                              "results are identical to a serial run")
    compare.add_argument("--targets", nargs="*", type=float, default=[],
                         help="also print annotations-to-target for these values")
    compare.add_argument("--ranker", default=None,
                         help="ranker file for lhs:<base> strategies")
    compare.add_argument("--plot", action="store_true",
                         help="also draw the curves as an ASCII chart")
    compare.add_argument("--checkpoint-dir", default=None,
                         help="write each completed (strategy, repeat) cell to "
                              "this directory as a JSON checkpoint; an "
                              "interrupted run can then restart with --resume")
    compare.add_argument("--resume", action="store_true",
                         help="reuse completed cells already checkpointed in "
                              "--checkpoint-dir instead of recomputing them")
    compare.add_argument("--max-retries", type=int, default=0,
                         help="extra attempts for a failing cell before it "
                              "counts as permanently failed (default 0)")
    compare.add_argument("--backoff", type=float, default=0.0,
                         help="base delay in seconds before retrying a failed "
                              "cell; doubles per failure with deterministic "
                              "jitter (default 0: retry immediately, the old "
                              "behavior)")
    compare.add_argument("--queue-dir", default=None,
                         help="run the grid through a broker-less work queue "
                              "materialized in this directory; extra workers "
                              "on any host sharing it can join with "
                              "'repro worker --queue-dir DIR'")
    compare.add_argument("--queue-backend", choices=["file", "sqlite"],
                         default="file",
                         help="queue state as lease files (safe on shared/"
                              "network filesystems) or a sqlite database "
                              "(faster for many small cells on local disk)")
    compare.add_argument("--local-workers", type=int, default=1,
                         help="worker processes to spawn locally alongside the "
                              "coordinator (0 = coordinate only, workers run "
                              "elsewhere; default 1)")
    compare.add_argument("--lease-ttl", type=float, default=30.0,
                         help="seconds without a heartbeat before a worker's "
                              "cell lease is considered stale and reclaimed "
                              "(default 30)")
    compare.add_argument("--grid-timeout", type=float, default=None,
                         help="give up coordinating after this many seconds; "
                              "with --on-error skip, unfinished cells are "
                              "quarantined and the finished ones aggregated")
    compare.add_argument("--on-error", choices=["raise", "skip"], default="raise",
                         help="'skip' drops permanently failed cells from the "
                              "averages (with a warning) instead of aborting")
    compare.add_argument("--history-backend", choices=["local", "shared", "mmap"],
                         default="local",
                         help="HistoryStore buffer backend; 'shared'/'mmap' give "
                              "the score matrix an OS-level name other processes "
                              "attach to zero-copy (results are identical across "
                              "backends)")
    compare.add_argument("--training-mode", choices=["cold", "warm"],
                         default="cold",
                         help="'cold' (default) refits each round's model from "
                              "scratch, byte-identical to historical runs; "
                              "'warm' resumes each round from the previous "
                              "round's parameters for models that support it "
                              "(much faster, same seeds, slightly different "
                              "optimisation trajectory)")
    compare.set_defaults(handler=_cmd_compare)

    run = subparsers.add_parser(
        "run",
        help="execute a declarative experiment document (see 'config show')",
    )
    run.add_argument("--config", required=True,
                     help="experiment JSON document (format 'repro.experiment')")
    run.set_defaults(handler=_cmd_run)

    config_cmd = subparsers.add_parser(
        "config", help="validate or print experiment documents"
    )
    config_sub = config_cmd.add_subparsers(dest="config_command", required=True)

    validate = config_sub.add_parser(
        "validate",
        help="build every component of a document once and report problems",
    )
    validate.add_argument("file", help="experiment JSON document to check")
    validate.set_defaults(handler=_cmd_config_validate)

    show = config_sub.add_parser(
        "show", help="print a normalised experiment document"
    )
    show.add_argument("file", nargs="?", default=None,
                      help="document to normalise and print")
    show.add_argument("--defaults", action="store_true",
                      help="print a runnable starting-point document instead")
    show.set_defaults(handler=_cmd_config_show)

    sweep_cmd = subparsers.add_parser(
        "sweep",
        help="run scenario-grid sweeps over one base experiment document",
        description="A sweep document (format 'repro.sweep') crosses a "
                    "base experiment with perturbation axes (label noise, "
                    "class imbalance, lexicon shift, annotation costs) and "
                    "reports pluggable metrics per grid cell.",
    )
    sweep_sub = sweep_cmd.add_subparsers(dest="sweep_command", required=True)

    sweep_run = sweep_sub.add_parser(
        "run", help="execute every grid cell and print matrix reports"
    )
    sweep_run.add_argument("file", help="sweep JSON document (format 'repro.sweep')")
    sweep_run.add_argument("--sweep-dir", default=None,
                           help="directory holding one checkpoint (and, for "
                                "distributed bases, queue) subdirectory per "
                                "cell; required for --resume")
    sweep_run.add_argument("--resume", action="store_true",
                           help="reuse cells already checkpointed under "
                                "--sweep-dir instead of recomputing them")
    sweep_run.set_defaults(handler=_cmd_sweep_run)

    sweep_validate = sweep_sub.add_parser(
        "validate",
        help="build every transform, cell, and metric of a sweep once",
    )
    sweep_validate.add_argument("file", help="sweep JSON document to check")
    sweep_validate.set_defaults(handler=_cmd_sweep_validate)

    sweep_show = sweep_sub.add_parser(
        "show", help="print a normalised sweep document (or its cells)"
    )
    sweep_show.add_argument("file", help="sweep JSON document to print")
    sweep_show.add_argument("--cells", action="store_true",
                            help="print each derived per-cell experiment "
                                 "document instead")
    sweep_show.set_defaults(handler=_cmd_sweep_show)

    worker = subparsers.add_parser(
        "worker",
        help="join a distributed comparison grid as a worker process",
        description="Claim, execute, and commit cells of a grid "
                    "materialized by 'repro compare --queue-dir' (or "
                    "run_distributed) until every cell is settled.  Run it "
                    "on any host that shares the queue directory; workers "
                    "may join or leave (even by SIGKILL) at any time "
                    "without affecting the grid's results.",
    )
    worker.add_argument("--queue-dir", required=True,
                        help="queue directory the coordinator materialized")
    worker.add_argument("--owner", default=None,
                        help="worker identity recorded in leases and the "
                             "audit log (default: hostname-pid)")
    worker.add_argument("--poll", type=float, default=0.5,
                        help="seconds between claim attempts when no cell is "
                             "eligible (default 0.5)")
    worker.add_argument("--max-cells", type=int, default=None,
                        help="exit after completing this many cells "
                             "(default: run until the queue settles)")
    worker.add_argument("--verbose", action="store_true",
                        help="print each lifecycle event (claim, commit, "
                             "retry, ...) to stderr")
    worker.set_defaults(handler=_cmd_worker)

    train = subparsers.add_parser(
        "train-ranker", help="run Algorithm 1 and save an LHS ranker"
    )
    add_common(train)
    train.add_argument("--base", default="entropy",
                       help="base strategy whose history feeds the features")
    train.add_argument("--candidates", type=int, default=12,
                       help="candidate-set size per round")
    train.add_argument("--predictor", choices=["lstm", "ar", "none"], default="ar")
    train.add_argument("--output", required=True, help="output ranker JSON file")
    train.set_defaults(handler=_cmd_train_ranker)

    session = subparsers.add_parser(
        "session",
        help="drive one annotation session through files on disk or a "
             "session server (external-annotator workflow)",
    )
    session_sub = session.add_subparsers(dest="session_command", required=True)

    def add_target(sub, with_output=True):
        """``--dir`` (local files) / ``--server`` + ``--session`` (remote)."""
        sub.add_argument("--dir", default=None,
                         help="session directory (local file-based mode)")
        sub.add_argument("--server", default=None,
                         help="base URL of a running 'repro serve' "
                              "(e.g. http://127.0.0.1:8700)")
        sub.add_argument("--session", default=None,
                         help="session id on the server (with --server)")
        if with_output:
            sub.add_argument("--output", default=None,
                             help="with --server: write the proposal JSON "
                                  "here instead of printing it")

    init = session_sub.add_parser(
        "init", help="create a session and propose the first batch"
    )
    add_common(init)
    add_target(init)
    init.add_argument("--strategy", required=True,
                      help="one spec like: entropy, wshs:entropy, lhs:lc")
    init.add_argument("--initial-size", type=int, default=None,
                      help="random initial batch size (default: --batch-size)")
    init.add_argument("--ranker", default=None,
                      help="ranker file for an lhs:<base> strategy")
    init.add_argument("--training-mode", choices=["cold", "warm"],
                      default="cold",
                      help="'warm' resumes each round's retrain from the "
                           "previous round's parameters (faster ingest "
                           "turnaround); 'cold' (default) refits from scratch")
    init.add_argument("--store", default=None,
                      help="with --server: store backend to persist the "
                           "session in (a name the server was started with)")
    init.set_defaults(handler=_cmd_session_init)

    propose = session_sub.add_parser(
        "propose", help="advance to (or re-print) the batch awaiting labels"
    )
    add_target(propose)
    propose.set_defaults(handler=_cmd_session_propose)

    ingest = session_sub.add_parser(
        "ingest", help="label the pending batch, retrain, propose the next one"
    )
    add_target(ingest)
    ingest.add_argument("--labels", default=None,
                        help="JSON file mapping sample index to label (the "
                             "proposal's labels_template, filled in)")
    ingest.add_argument("--oracle", action="store_true",
                        help="answer from the dataset's own labels instead of "
                             "a labels file (for smoke tests)")
    ingest.set_defaults(handler=_cmd_session_ingest)

    status = session_sub.add_parser(
        "status", help="print the session's state without loading any data"
    )
    add_target(status, with_output=False)
    status.set_defaults(handler=_cmd_session_status)

    result = session_sub.add_parser(
        "result", help="print or save the finished session's audit trail"
    )
    add_target(result, with_output=False)
    result.add_argument("--output", default=None,
                        help="write the audit-trail document here instead of "
                             "printing it")
    result.set_defaults(handler=_cmd_session_result)

    serve = subparsers.add_parser(
        "serve",
        help="host annotation sessions over HTTP (AL-as-a-service)",
        description="Run a multi-tenant session server.  Clients create "
                    "and drive sessions through the JSON API (or through "
                    "'repro session ... --server URL'); state persists in "
                    "the configured store backends, so the server can be "
                    "restarted without losing sessions.",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8700,
                       help="TCP port (default 8700; 0 picks a free one)")
    serve.add_argument("--json-dir", default=None,
                       help="expose a 'json' store: one <id>.json document "
                            "per session in this directory")
    serve.add_argument("--sqlite", default=None,
                       help="expose a 'sqlite' store: sessions in this "
                            "database file with transactional writes")
    serve.add_argument("--default-store", default=None,
                       help="store used when a create request names none "
                            "(default: the first configured store)")
    serve.set_defaults(handler=_cmd_serve)
    return parser


def main(argv: "Sequence[str] | None" = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except KeyboardInterrupt:
        # By the time the interrupt reaches here, the queue layer has
        # already released any held leases with an "interrupted" audit
        # annotation (run_worker / run_distributed release on the way
        # out), so the cells are instantly reclaimable — the hint only
        # has to say how to pick the grid back up.
        hint = ""
        queue_dir = getattr(args, "queue_dir", None)
        if queue_dir:
            hint = (
                f"; held leases were released — rerun with the same "
                f"--queue-dir {queue_dir} (or restart workers) to resume "
                "the grid"
            )
        elif getattr(args, "checkpoint_dir", None):
            hint = (
                f"; completed cells are checkpointed in {args.checkpoint_dir} "
                "— rerun with --resume to continue"
            )
        elif getattr(args, "sweep_dir", None):
            hint = (
                f"; completed cells are checkpointed under {args.sweep_dir} "
                "— rerun with --resume to continue"
            )
        print(f"interrupted{hint}", file=sys.stderr)
        return 130
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream reader (head, grep -q, ...) closed the pipe early;
        # redirect stdout so the interpreter's exit flush cannot raise.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())

"""Save and load trained LHS rankers as plain JSON.

A ranker trained by Algorithm 1 is expensive (it retrains the task model
once per candidate), and the paper's deployment story is explicitly to
train once on a labeled corpus and reuse the ranker on other datasets of
the same task.  This module persists the whole
:class:`~repro.core.ranker_training.LHSRanker` bundle — LambdaMART trees,
feature-extractor configuration, and the fitted next-score predictor — as
a single JSON document.  JSON (not pickle) keeps the artifact inspectable
and safe to load from untrusted sources.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .core.features import RankingFeatureExtractor
from .core.ranker_training import LHSRanker
from .exceptions import DataError
from .formats import RANKER_FORMAT, RANKER_VERSION
from .ioutil import atomic_write_text
from .ltr.lambdamart import LambdaMART
from .ltr.trees import RegressionTree, _Node
from .models.lstm import LSTMRegressor
from .timeseries.autoregressive import ARPredictor
from .timeseries.predictor import ARNextScorePredictor, LSTMNextScorePredictor

# The ranker document's schema constants live in :mod:`repro.formats`;
# FORMAT_VERSION is kept as the historical alias of RANKER_VERSION.
FORMAT_VERSION = RANKER_VERSION


# -- trees -------------------------------------------------------------------


def _node_to_dict(node: _Node) -> dict:
    # Iterative traversal: trees loaded from JSON can be deeper than the
    # interpreter's recursion limit allows.
    root_payload: dict = {}
    stack = [(node, root_payload)]
    while stack:
        current, payload = stack.pop()
        if current.is_leaf:
            payload["value"] = current.value
        else:
            payload["feature"] = current.feature
            payload["threshold"] = current.threshold
            payload["left"] = {}
            payload["right"] = {}
            stack.append((current.right, payload["right"]))
            stack.append((current.left, payload["left"]))
    return root_payload


def _node_from_dict(payload: dict) -> _Node:
    root = _Node()
    stack = [(payload, root)]
    while stack:
        data, node = stack.pop()
        if "feature" not in data:
            node.value = float(data["value"])
        else:
            node.feature = int(data["feature"])
            node.threshold = float(data["threshold"])
            node.left = _Node()
            node.right = _Node()
            stack.append((data["right"], node.right))
            stack.append((data["left"], node.left))
    return root


def _tree_to_dict(tree: RegressionTree) -> dict:
    if tree._root is None:
        raise DataError("cannot serialise an unfitted tree")
    return {
        "max_depth": tree.max_depth,
        "min_samples_leaf": tree.min_samples_leaf,
        "root": _node_to_dict(tree._root),
    }


def _tree_from_dict(payload: dict) -> RegressionTree:
    tree = RegressionTree(
        max_depth=int(payload["max_depth"]),
        min_samples_leaf=int(payload["min_samples_leaf"]),
    )
    tree._root = _node_from_dict(payload["root"])
    return tree


# -- LambdaMART ---------------------------------------------------------------


def _ranker_model_to_dict(model: LambdaMART) -> dict:
    if not model._trees:
        raise DataError("cannot serialise an unfitted LambdaMART model")
    return {
        "n_estimators": model.n_estimators,
        "learning_rate": model.learning_rate,
        "max_depth": model.max_depth,
        "min_samples_leaf": model.min_samples_leaf,
        "sigma": model.sigma,
        "ndcg_k": model.ndcg_k,
        "trees": [_tree_to_dict(tree) for tree in model._trees],
    }


def _ranker_model_from_dict(payload: dict) -> LambdaMART:
    model = LambdaMART(
        n_estimators=int(payload["n_estimators"]),
        learning_rate=float(payload["learning_rate"]),
        max_depth=int(payload["max_depth"]),
        min_samples_leaf=int(payload["min_samples_leaf"]),
        sigma=float(payload["sigma"]),
        ndcg_k=payload["ndcg_k"],
    )
    model._trees = [_tree_from_dict(tree) for tree in payload["trees"]]
    return model


# -- predictors ------------------------------------------------------------------


def _predictor_to_dict(predictor) -> "dict | None":
    if predictor is None:
        return None
    if isinstance(predictor, ARNextScorePredictor):
        inner = predictor._model
        if inner._coefficients is None:
            raise DataError("cannot serialise an unfitted AR predictor")
        return {
            "kind": "ar",
            "order": inner.order,
            "ridge": inner.ridge,
            "coefficients": inner._coefficients.tolist(),
        }
    if isinstance(predictor, LSTMNextScorePredictor):
        inner = predictor._model
        if inner._params is None:
            raise DataError("cannot serialise an unfitted LSTM predictor")
        return {
            "kind": "lstm",
            "hidden_dim": inner.hidden_dim,
            "epochs": inner.epochs,
            "learning_rate": inner.learning_rate,
            "seed": inner.seed,
            "params": {name: value.tolist() for name, value in inner._params.items()},
        }
    raise DataError(f"cannot serialise predictor of type {type(predictor).__name__}")


def _predictor_from_dict(payload: "dict | None"):
    if payload is None:
        return None
    if payload["kind"] == "ar":
        predictor = ARNextScorePredictor(
            order=int(payload["order"]), ridge=float(payload["ridge"])
        )
        inner: ARPredictor = predictor._model
        inner._coefficients = np.asarray(payload["coefficients"], dtype=np.float64)
        return predictor
    if payload["kind"] == "lstm":
        predictor = LSTMNextScorePredictor(
            hidden_dim=int(payload["hidden_dim"]),
            epochs=int(payload["epochs"]),
            seed=int(payload["seed"]),
        )
        inner: LSTMRegressor = predictor._model
        inner.learning_rate = float(payload["learning_rate"])
        inner._params = {
            name: np.asarray(value, dtype=np.float64)
            for name, value in payload["params"].items()
        }
        return predictor
    raise DataError(f"unknown predictor kind {payload['kind']!r}")


# -- extractor + bundle --------------------------------------------------------------


def _extractor_to_dict(extractor: RankingFeatureExtractor) -> dict:
    return {
        "window": extractor.window,
        "use_history": extractor.use_history,
        "use_fluctuation": extractor.use_fluctuation,
        "use_trend": extractor.use_trend,
        "use_prediction": extractor.use_prediction,
        "use_probabilities": extractor.use_probabilities,
        "use_window_stats": extractor.use_window_stats,
        "predictor": _predictor_to_dict(extractor.predictor),
    }


def _extractor_from_dict(payload: dict) -> RankingFeatureExtractor:
    return RankingFeatureExtractor(
        window=int(payload["window"]),
        predictor=_predictor_from_dict(payload["predictor"]),
        use_history=bool(payload["use_history"]),
        use_fluctuation=bool(payload["use_fluctuation"]),
        use_trend=bool(payload["use_trend"]),
        use_prediction=bool(payload["use_prediction"]),
        use_probabilities=bool(payload["use_probabilities"]),
        use_window_stats=bool(payload.get("use_window_stats", False)),
    )


def save_lhs_ranker(ranker: LHSRanker, path: "str | Path") -> None:
    """Write ``ranker`` to ``path`` as a single JSON document.

    The write is atomic (temp file + ``os.replace``): a crash mid-write
    leaves any existing file at ``path`` intact rather than truncated.
    """
    payload = {
        "format": RANKER_FORMAT,
        "version": FORMAT_VERSION,
        "base_name": ranker.base_name,
        "training_rows": ranker.training_rows,
        "model": _ranker_model_to_dict(ranker.model),
        "extractor": _extractor_to_dict(ranker.extractor),
    }
    atomic_write_text(path, json.dumps(payload))


def load_lhs_ranker(path: "str | Path") -> LHSRanker:
    """Load a ranker written by :func:`save_lhs_ranker`.

    Raises
    ------
    DataError
        If the file is not a ranker document or has an unknown version.
    """
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise DataError(f"cannot read ranker file {path}: {error}") from error
    if not isinstance(payload, dict) or payload.get("format") != RANKER_FORMAT:
        raise DataError(f"{path} is not an LHS ranker document")
    if payload.get("version") != FORMAT_VERSION:
        raise DataError(
            f"unsupported ranker format version {payload.get('version')!r}"
        )
    return LHSRanker(
        model=_ranker_model_from_dict(payload["model"]),
        extractor=_extractor_from_dict(payload["extractor"]),
        base_name=str(payload["base_name"]),
        training_rows=int(payload["training_rows"]),
        source=str(path),
    )

"""Dataset and split specs: corpora and train/test cuts as pure JSON.

A dataset spec names a registered corpus generator plus its generation
params (``scale``, ``seed``)::

    {"kind": "mr", "params": {"scale": 0.1, "seed": 7}, "version": 1}

Generators are deterministic given those params, so two processes
building the same dataset spec hold byte-identical corpora — which is
what lets spawn-started experiment workers rebuild their cell from data
alone.

A *split spec* is the (deliberately tiny) JSON description of how the
corpus divides into annotation pool and held-out test set; today the
single kind is the head/tail fraction cut the CLI has always used::

    {"kind": "fraction", "params": {"test_fraction": 0.3}, "version": 1}
"""

from __future__ import annotations

from ..data import (
    conll2002_dutch,
    conll2002_spanish,
    conll2003_english,
    mr,
    sst2,
    subj,
    trec,
)
from ..exceptions import SpecError
from .core import SpecRegistry, as_spec

DATASET_REGISTRY = SpecRegistry("dataset")
SPLIT_REGISTRY = SpecRegistry("split")

#: Task family per dataset kind ("text" -> classifiers + accuracy,
#: "ner" -> sequence labelers + span F1).
DATASET_TASKS: dict[str, str] = {}


def register_dataset(kind: str, generator, task: str) -> None:
    """Register a corpus generator under ``kind`` for task family ``task``."""

    def build(params: dict) -> object:
        scale = float(params.pop("scale", 1.0))
        seed = params.pop("seed", None)
        if params:
            raise SpecError(
                f"unknown dataset params for kind {kind!r}: {sorted(params)}"
            )
        return generator(scale=scale, seed_or_rng=seed)

    DATASET_REGISTRY.register(kind, build)
    DATASET_TASKS[kind.lower()] = task


for _kind, _generator in (("mr", mr), ("sst2", sst2), ("subj", subj), ("trec", trec)):
    register_dataset(_kind, _generator, "text")
for _kind, _generator in (
    ("conll-en", conll2003_english),
    ("conll-es", conll2002_spanish),
    ("conll-nl", conll2002_dutch),
):
    register_dataset(_kind, _generator, "ner")


def _build_fraction_split(params: dict):
    test_fraction = float(params.pop("test_fraction", 0.3))
    if params:
        raise SpecError(f"unknown split params: {sorted(params)}")
    if not 0.0 < test_fraction < 1.0:
        raise SpecError(f"test_fraction must be in (0, 1), got {test_fraction}")

    def split(dataset):
        cut = int(len(dataset) * (1.0 - test_fraction))
        return dataset.subset(range(cut)), dataset.subset(range(cut, len(dataset)))

    return split


SPLIT_REGISTRY.register("fraction", _build_fraction_split)


def build_dataset(spec) -> tuple[object, str]:
    """Build ``(dataset, task)`` from a dataset spec."""
    parsed = as_spec(spec)
    dataset = DATASET_REGISTRY.build(parsed)
    return dataset, DATASET_TASKS[parsed.kind]


def build_split(spec, dataset) -> tuple[object, object]:
    """Apply a split spec to ``dataset``; returns ``(train, test)``."""
    return SPLIT_REGISTRY.build(spec)(dataset)


def dataset_kinds() -> list[str]:
    """Sorted registered dataset kinds."""
    return DATASET_REGISTRY.kinds()

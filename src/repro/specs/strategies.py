"""Strategy specs: nested, pure-JSON descriptions of query strategies.

A wrapper strategy's spec embeds its base strategy's spec under the
``"base"`` param, so ``WSHS(Entropy(), window=5)`` is::

    {"kind": "wshs",
     "params": {"base": {"kind": "entropy", "params": {}, "version": 1},
                "window": 5},
     "version": 1}

LHS references its trained ranker by *file path* (the ``"ranker"``
param): rankers are data artifacts, not configuration, so the spec names
the artifact instead of inlining it.  ``spec_of_strategy`` on an LHS
instance therefore requires the ranker to know which file it was loaded
from (:func:`repro.persistence.load_lhs_ranker` records it); an LHS
around an in-memory ranker has no JSON description and raises
:class:`~repro.exceptions.SpecError`.

``parse_strategy_shorthand`` turns the CLI's compact ``name`` /
``wrapper:base`` strings into full specs, so the flag-based and
config-file construction paths are literally the same code.
"""

from __future__ import annotations

from ..core.strategies import (
    BALD,
    EGL,
    FHS,
    HKLD,
    HUS,
    LHS,
    MMR,
    MNLP,
    QBC,
    WSHS,
    DensityWeighted,
    EGLWord,
    Entropy,
    LeastConfidence,
    Margin,
    Random,
)
from ..exceptions import SpecError
from .core import Spec, SpecRegistry

STRATEGY_REGISTRY = SpecRegistry("strategy")

#: Wrapper kinds the CLI shorthand ``wrapper:base`` recognises.
SHORTHAND_WRAPPERS = ("hus", "wshs", "fhs", "lhs")


def register_simple_strategy(kind: str, cls: type, param_names: "tuple[str, ...]" = ()) -> None:
    """Register a strategy whose params mirror its attributes."""

    def build(params: dict) -> object:
        return cls(**params)

    def params_of(strategy: object) -> dict:
        return {name: getattr(strategy, name) for name in param_names}

    STRATEGY_REGISTRY.register(kind, build, cls=cls, params_of=params_of)


def register_wrapper_strategy(kind: str, cls: type, param_names: "tuple[str, ...]" = ()) -> None:
    """Register a strategy wrapping a base strategy (nested ``base`` spec)."""

    def build(params: dict) -> object:
        if "base" not in params:
            raise SpecError(f"strategy kind {kind!r} needs a 'base' param")
        base = build_strategy(params.pop("base"))
        return cls(base, **params)

    def params_of(strategy: object) -> dict:
        params = {"base": spec_of_strategy(strategy.base).to_dict()}
        params.update({name: getattr(strategy, name) for name in param_names})
        return params

    STRATEGY_REGISTRY.register(kind, build, cls=cls, params_of=params_of)


def _build_lhs(params: dict) -> LHS:
    if "base" not in params:
        raise SpecError("strategy kind 'lhs' needs a 'base' param")
    if not params.get("ranker"):
        raise SpecError(
            "strategy kind 'lhs' needs a 'ranker' param naming a ranker "
            "file written by train_lhs_ranker/save_lhs_ranker"
        )
    from ..persistence import load_lhs_ranker

    base = build_strategy(params.pop("base"))
    ranker = load_lhs_ranker(params.pop("ranker"))
    candidates = [
        build_strategy(candidate)
        for candidate in params.pop("candidate_strategies", [])
    ]
    return LHS(base, ranker, candidate_strategies=candidates or None, **params)


def _lhs_params_of(strategy: LHS) -> dict:
    source = getattr(strategy.ranker, "source", None)
    if not source:
        raise SpecError(
            "cannot serialise an LHS strategy whose ranker was not loaded "
            "from a file (save it with save_lhs_ranker and reload first)"
        )
    return {
        "base": spec_of_strategy(strategy.base).to_dict(),
        "ranker": str(source),
        "candidate_strategies": [
            spec_of_strategy(candidate).to_dict()
            for candidate in strategy.candidate_strategies
        ],
        "candidate_factor": strategy.candidate_factor,
    }


register_simple_strategy("random", Random)
register_simple_strategy("entropy", Entropy)
register_simple_strategy("lc", LeastConfidence)
register_simple_strategy("margin", Margin)
register_simple_strategy("egl", EGL)
register_simple_strategy("egl-word", EGLWord)
register_simple_strategy("mnlp", MNLP)
register_simple_strategy("bald", BALD, ("n_draws",))
register_simple_strategy("qbc", QBC, ("committee_size",))
register_simple_strategy("hkld", HKLD, ("committee_size",))
register_wrapper_strategy("density", DensityWeighted, ("beta",))
register_wrapper_strategy("mmr", MMR, ("balance",))
register_wrapper_strategy("hus", HUS, ("window",))
register_wrapper_strategy("wshs", WSHS, ("window",))
register_wrapper_strategy(
    "fhs",
    FHS,
    ("window", "score_weight", "fluctuation_weight", "scale_fluctuation"),
)
STRATEGY_REGISTRY.register("lhs", _build_lhs, cls=LHS, params_of=_lhs_params_of)


def build_strategy(spec) -> object:
    """Build a strategy (recursively building nested bases) from its spec."""
    return STRATEGY_REGISTRY.build(spec)


def spec_of_strategy(strategy: object) -> Spec:
    """The spec that rebuilds ``strategy``, nested bases included."""
    return STRATEGY_REGISTRY.spec_of(strategy)


def capabilities_of(spec) -> dict:
    """Capability flags of the strategy a spec describes.

    Builds the strategy and reads its
    :func:`~repro.core.strategies.base.strategy_capabilities` — the
    declared optimisation surface (model-only rescoring short-circuit,
    model-history retention) of a grid document's entries, without
    running anything.
    """
    from ..core.strategies.base import strategy_capabilities

    return strategy_capabilities(build_strategy(spec))


def strategy_kinds() -> list[str]:
    """Sorted registered strategy kinds."""
    return STRATEGY_REGISTRY.kinds()


def parse_strategy_shorthand(
    text: str, window: int = 3, ranker_path: "str | None" = None
) -> Spec:
    """Turn a CLI ``name`` / ``wrapper:base`` string into a full spec.

    ``wrapper`` must be one of :data:`SHORTHAND_WRAPPERS`; ``lhs:<base>``
    additionally needs ``ranker_path``.  The plain-``name`` form builds
    the kind with default params.
    """
    wrapper_key, _, base_key = text.lower().partition(":")
    if not base_key:
        return Spec(kind=wrapper_key)
    base = Spec(kind=base_key).to_dict()
    if wrapper_key == "lhs":
        if not ranker_path:
            raise SpecError("lhs:<base> requires --ranker <file>")
        return Spec(kind="lhs", params={"base": base, "ranker": str(ranker_path)})
    if wrapper_key in SHORTHAND_WRAPPERS:
        return Spec(kind=wrapper_key, params={"base": base, "window": window})
    raise SpecError(f"unknown strategy wrapper {wrapper_key!r}")

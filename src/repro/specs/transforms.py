"""Scenario specs: perturbation recipes as pure JSON.

A *scenario* names an ordered list of transform specs plus the seed of
the perturbation RNG family::

    {
        "name": "noise10",
        "seed": 0,
        "transforms": [
            {"kind": "label_noise", "params": {"rate": 0.1}, "version": 1}
        ]
    }

Scenarios ride inside an experiment document's optional ``scenario``
section (:mod:`repro.specs.experiment`), so every consumer that rebuilds
datasets from a spec — the serial runner, spawn workers, distributed
``repro worker`` processes, the session service — applies the identical
perturbation with zero protocol changes.

RNG discipline (see :mod:`repro.data.transforms`): transform ``i`` draws
from ``np.random.default_rng([seed, i])``, a stream family independent
of the experiment's run RNG.  The position-indexed streams are why a
scenario's *fingerprint* keeps identity transforms in place: dropping
them would alias two scenarios whose later transforms draw from
different streams.  A scenario whose transforms are all identity (or
absent) fingerprints as ``None`` — such a scenario is byte-identical to
no scenario at all, which is the degenerate-sweep contract.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from ..data.transforms import (
    AnnotationCost,
    ClassImbalance,
    IdentityTransform,
    LabelNoise,
    LexiconShift,
    ScenarioTransform,
)
from ..exceptions import SpecError
from .core import Spec, SpecRegistry, as_spec

TRANSFORM_REGISTRY = SpecRegistry("transform")


def _transform_builder(cls):
    def build(params: dict) -> ScenarioTransform:
        return cls(**params)

    return build


def _transform_params(transform: ScenarioTransform) -> dict:
    return transform.params()


for _cls in (IdentityTransform, LabelNoise, ClassImbalance, LexiconShift, AnnotationCost):
    TRANSFORM_REGISTRY.register(
        _cls.kind, _transform_builder(_cls), cls=_cls, params_of=_transform_params
    )


def build_transform(spec) -> ScenarioTransform:
    """Build one transform from its spec."""
    return TRANSFORM_REGISTRY.build(spec)


def transform_kinds() -> list[str]:
    """Sorted registered transform kinds."""
    return TRANSFORM_REGISTRY.kinds()


class ScenarioSpec:
    """One named perturbation scenario: seed + ordered transform specs."""

    def __init__(self, name: str = "", seed: int = 0, transforms=()) -> None:
        self.name = str(name)
        self.seed = int(seed)
        self.transforms: tuple[Spec, ...] = tuple(as_spec(t) for t in transforms)

    # -- serialisation ------------------------------------------------

    def to_dict(self) -> dict:
        """Serialize the scenario to its document form."""
        return {
            "name": self.name,
            "seed": self.seed,
            "transforms": [spec.to_dict() for spec in self.transforms],
        }

    @classmethod
    def from_dict(cls, payload) -> "ScenarioSpec":
        if isinstance(payload, ScenarioSpec):
            payload = payload.to_dict()
        if not isinstance(payload, Mapping):
            raise SpecError(
                f"a scenario must be a dict, got {type(payload).__name__}"
            )
        unknown = set(payload) - {"name", "seed", "transforms"}
        if unknown:
            raise SpecError(f"unknown scenario keys: {sorted(unknown)}")
        transforms = payload.get("transforms", [])
        if not isinstance(transforms, (list, tuple)):
            raise SpecError("scenario transforms must be a list of transform specs")
        return cls(
            name=payload.get("name", ""),
            seed=payload.get("seed", 0),
            transforms=transforms,
        )

    def validate(self) -> None:
        """Build every transform once, surfacing bad kinds/params early."""
        for spec in self.transforms:
            build_transform(spec)

    # -- semantics ----------------------------------------------------

    def is_identity(self) -> bool:
        """Whether this scenario provably leaves the experiment unchanged."""
        return all(spec.kind == IdentityTransform.kind for spec in self.transforms)

    def fingerprint(self) -> "dict | None":
        """Checkpoint-fingerprint contribution, or ``None`` for identity.

        Identity scenarios fingerprint as ``None`` so their checkpoints
        stay byte-identical to scenario-free runs; any effective
        transform list fingerprints whole (identity entries included,
        because RNG streams are position-indexed).
        """
        if self.is_identity():
            return None
        return {
            "seed": self.seed,
            "transforms": [spec.to_dict() for spec in self.transforms],
        }

    def built_transforms(self) -> "list[ScenarioTransform]":
        """Build all transform instances, in position order."""
        return [build_transform(spec) for spec in self.transforms]

    def apply(self, train, test):
        """Apply every transform in order; returns perturbed (train, test).

        Transform ``i`` draws from ``default_rng([seed, i])`` — every
        cell, worker, and resume sees the identical perturbed data.
        """
        for position, transform in enumerate(self.built_transforms()):
            rng = np.random.default_rng([self.seed, position])
            train, test = transform.apply(train, test, rng)
        return train, test

    def costs(self, train) -> "np.ndarray | None":
        """Per-sample annotation costs for the (perturbed) train pool.

        The last transform defining a cost model wins; ``None`` means
        the implicit unit-cost model.
        """
        costs = None
        for transform in self.built_transforms():
            vector = transform.costs(train)
            if vector is not None:
                costs = vector
        return costs

    def __repr__(self) -> str:
        kinds = ", ".join(spec.kind for spec in self.transforms) or "identity"
        return f"ScenarioSpec(name={self.name!r}, seed={self.seed}, [{kinds}])"

    def __eq__(self, other) -> bool:
        if not isinstance(other, ScenarioSpec):
            return NotImplemented
        return self.to_dict() == other.to_dict()

"""Model specs: every task model buildable from (kind, hyperparams).

Each registered kind maps a JSON params dict straight onto the model
constructor, and ``params_of`` reads the same names back off the
instance, so ``build_model(spec_of_model(m))`` reproduces a model whose
training and predictions are byte-identical to ``m``'s (training in this
package is deterministic given the constructor arguments).

The ``embedding_matrix`` escape hatch of the embedding models is *not*
part of the spec (it is an in-memory array, not configuration); models
built from specs derive their embeddings from the dataset as usual.
"""

from __future__ import annotations

from ..models import BiLSTMCRF, LinearChainCRF, LinearSoftmax, MLPClassifier, TextCNN
from .core import Spec, SpecRegistry

MODEL_REGISTRY = SpecRegistry("model")


def register_model(kind: str, cls: type, param_names: "tuple[str, ...]") -> None:
    """Register a model class whose spec params mirror its attributes."""

    def build(params: dict) -> object:
        return cls(**params)

    def params_of(model: object) -> dict:
        return {name: getattr(model, name) for name in param_names}

    MODEL_REGISTRY.register(kind, build, cls=cls, params_of=params_of)


register_model(
    "linear",
    LinearSoftmax,
    ("epochs", "learning_rate", "l2", "batch_size", "seed"),
)
register_model(
    "mlp",
    MLPClassifier,
    (
        "hidden_dim",
        "embedding_dim",
        "dropout",
        "epochs",
        "learning_rate",
        "batch_size",
        "l2",
        "seed",
    ),
)
register_model(
    "textcnn",
    TextCNN,
    (
        "embedding_dim",
        "filters",
        "widths",
        "dropout",
        "epochs",
        "learning_rate",
        "batch_size",
        "l2",
        "seed",
        "max_length",
    ),
)
register_model(
    "crf",
    LinearChainCRF,
    ("epochs", "learning_rate", "l2", "batch_size", "feature_dropout", "seed"),
)
register_model(
    "bilstm-crf",
    BiLSTMCRF,
    (
        "embedding_dim",
        "hidden_dim",
        "dropout",
        "epochs",
        "learning_rate",
        "batch_size",
        "l2",
        "seed",
    ),
)


def build_model(spec) -> object:
    """Build a fresh unfitted model from its spec."""
    return MODEL_REGISTRY.build(spec)


def spec_of_model(model: object) -> Spec:
    """The spec that rebuilds ``model`` (raises :class:`SpecError` if none)."""
    return MODEL_REGISTRY.spec_of(model)


def model_kinds() -> list[str]:
    """Sorted registered model kinds."""
    return MODEL_REGISTRY.kinds()

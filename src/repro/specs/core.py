"""The spec substrate: :class:`Spec` and per-layer :class:`SpecRegistry`.

A *spec* is a pure-JSON description of one object: a ``kind`` naming a
registered recipe, a ``params`` dict of JSON-compatible constructor
arguments, and a ``version`` so on-disk specs can evolve.  Specs are the
declarative counterpart of the ad-hoc lambdas the construction paths
used to take: they pickle (they are plain data), they diff, and they can
be embedded in checkpoints so an artifact describes the run that wrote
it.

Each layer (strategies, models, datasets) owns one :class:`SpecRegistry`
mapping kinds to a *builder* (params -> object) and, where the mapping
is invertible, a *params_of* extractor (object -> params) keyed by the
object's exact class.  ``build(spec_of(x))`` must reproduce an object
behaviourally identical to ``x`` — the round-trip the spec tests pin
down byte-for-byte.

Registration is idempotent for the *same* recipe: re-registering a kind
with the identical builder/extractor pair (a module reloaded in a
notebook) is a no-op, while re-registering it with a different recipe
still raises, because silently replacing a recipe would change what
existing specs build.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass, field

from ..exceptions import SpecError

# Stamped into (and required of) every serialised spec; defined in
# :mod:`repro.formats` and re-exported by the module that owns the reader.
from ..formats import SPEC_VERSION


def _json_clean(value):
    """Verify ``value`` is JSON-compatible data, normalising tuples."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_clean(item) for item in value]
    if isinstance(value, Mapping):
        return {str(key): _json_clean(item) for key, item in value.items()}
    raise SpecError(
        f"spec params must be pure JSON data, got {type(value).__name__}: {value!r}"
    )


@dataclass(frozen=True)
class Spec:
    """One declarative object description: ``kind`` + JSON ``params``."""

    kind: str
    params: dict = field(default_factory=dict)
    version: int = SPEC_VERSION

    def __post_init__(self) -> None:
        if not isinstance(self.kind, str) or not self.kind:
            raise SpecError(f"spec kind must be a non-empty string, got {self.kind!r}")
        object.__setattr__(self, "kind", self.kind.lower())
        object.__setattr__(self, "params", _json_clean(dict(self.params)))

    def to_dict(self) -> dict:
        """The spec as a plain JSON-compatible dict."""
        return {"kind": self.kind, "params": self.params, "version": self.version}

    @classmethod
    def from_dict(cls, payload) -> "Spec":
        """Parse a dict (or pass through a :class:`Spec`), validating it.

        Raises
        ------
        SpecError
            If the payload is not a spec-shaped dict or its version is
            not :data:`SPEC_VERSION`.
        """
        if isinstance(payload, Spec):
            payload = payload.to_dict()
        if not isinstance(payload, Mapping):
            raise SpecError(f"a spec must be a dict, got {type(payload).__name__}")
        unknown = set(payload) - {"kind", "params", "version"}
        if unknown:
            raise SpecError(f"unknown spec keys: {sorted(unknown)}")
        if "kind" not in payload:
            raise SpecError(f"spec has no 'kind': {dict(payload)!r}")
        version = payload.get("version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise SpecError(
                f"unsupported spec version {version!r} (this build reads "
                f"version {SPEC_VERSION})"
            )
        params = payload.get("params", {})
        if not isinstance(params, Mapping):
            raise SpecError(
                f"spec params must be a dict, got {type(params).__name__}"
            )
        return cls(kind=str(payload["kind"]), params=dict(params), version=SPEC_VERSION)


def as_spec(value: "Spec | Mapping | str") -> Spec:
    """Coerce user input to a :class:`Spec` (a bare string means no params)."""
    if isinstance(value, str):
        return Spec(kind=value)
    return Spec.from_dict(value)


def is_spec_like(value) -> bool:
    """Whether ``value`` looks like a spec (vs. a factory/instance)."""
    if isinstance(value, Spec):
        return True
    return isinstance(value, Mapping) and "kind" in value


def same_callable(a, b) -> bool:
    """Whether two callables are the same recipe.

    Identity, or — so a module reload (which recreates every function and
    class object) stays idempotent — an identical ``__module__`` +
    ``__qualname__`` pair.
    """
    if a is b:
        return True
    if a is None or b is None:
        return False
    key_a = (getattr(a, "__module__", None), getattr(a, "__qualname__", None))
    key_b = (getattr(b, "__module__", None), getattr(b, "__qualname__", None))
    return None not in key_a and key_a == key_b


@dataclass(frozen=True)
class _Entry:
    """One registered kind: how to build it and how to serialise it back."""

    kind: str
    builder: Callable[..., object]
    cls: "type | None" = None
    params_of: "Callable[[object], dict] | None" = None

    def same_recipe(self, other: "_Entry") -> bool:
        return (
            self.kind == other.kind
            and same_callable(self.builder, other.builder)
            and same_callable(self.cls, other.cls)
            and same_callable(self.params_of, other.params_of)
        )


class SpecRegistry:
    """Kind -> recipe registry for one layer (strategies, models, ...)."""

    def __init__(self, layer: str) -> None:
        self.layer = layer
        self._entries: dict[str, _Entry] = {}
        self._by_class: dict[type, _Entry] = {}

    def register(
        self,
        kind: str,
        builder: Callable[..., object],
        cls: "type | None" = None,
        params_of: "Callable[[object], dict] | None" = None,
    ) -> None:
        """Register (idempotently) how to build and serialise one kind.

        Re-registering the same ``(builder, cls, params_of)`` recipe under
        the same kind is a no-op; a *different* recipe for an existing
        kind raises :class:`SpecError`.
        """
        lowered = kind.lower()
        entry = _Entry(kind=lowered, builder=builder, cls=cls, params_of=params_of)
        existing = self._entries.get(lowered)
        if existing is not None and not existing.same_recipe(entry):
            raise SpecError(
                f"{self.layer} kind {kind!r} is already registered with a "
                "different recipe"
            )
        # Store (or refresh, after a reload) the newest objects.
        self._entries[lowered] = entry
        if cls is not None:
            self._by_class[cls] = entry

    def kinds(self) -> list[str]:
        """Sorted registered kinds."""
        return sorted(self._entries)

    def entry(self, kind: str) -> _Entry:
        """The registered recipe for ``kind`` (:class:`SpecError` if absent)."""
        lowered = kind.lower()
        if lowered not in self._entries:
            known = ", ".join(self.kinds())
            raise SpecError(f"unknown {self.layer} kind {kind!r}; known: {known}")
        return self._entries[lowered]

    def build(self, spec: "Spec | Mapping | str", **context) -> object:
        """Build the object a spec describes.

        ``context`` carries non-JSON build-time collaborators (e.g. the
        ranker loader); builders accept the subset they need.

        Raises
        ------
        SpecError
            Unknown kind, malformed spec, or params the builder's
            constructor rejects (the constructor's
            :class:`~repro.exceptions.ConfigurationError` propagates
            unchanged — it is already a precise diagnosis).
        """
        parsed = as_spec(spec)
        entry = self.entry(parsed.kind)
        try:
            return entry.builder(dict(parsed.params), **context)
        except TypeError as error:
            raise SpecError(
                f"bad params for {self.layer} kind {parsed.kind!r}: {error}"
            ) from error

    def spec_of(self, obj: object) -> Spec:
        """The spec that rebuilds ``obj`` (exact-class lookup).

        Raises
        ------
        SpecError
            If no registered kind claims the object's class, or the
            object cannot be serialised (e.g. an LHS ranker with no file
            reference).
        """
        entry = self._by_class.get(type(obj))
        if entry is None or entry.params_of is None:
            raise SpecError(
                f"no registered {self.layer} kind can serialise a "
                f"{type(obj).__name__}"
            )
        return Spec(kind=entry.kind, params=entry.params_of(obj))

    def can_describe(self, obj: object) -> bool:
        """Whether :meth:`spec_of` would succeed for ``obj``'s class."""
        entry = self._by_class.get(type(obj))
        return entry is not None and entry.params_of is not None

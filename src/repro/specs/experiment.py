"""The top-level experiment document: a whole comparison grid as one JSON file.

An *experiment spec* bundles everything ``repro compare`` used to take as
flags — corpus, split, model, the strategy grid, the experiment shape,
and runner/report options — into a single versioned document::

    {
      "format": "repro.experiment",
      "version": 1,
      "dataset": {"kind": "mr", "params": {"scale": 0.1, "seed": 7}},
      "split": {"kind": "fraction", "params": {"test_fraction": 0.3}},
      "model": {"kind": "linear", "params": {"epochs": 5, ...}},
      "strategies": {
        "entropy": {"kind": "entropy", "params": {}},
        "wshs:entropy": {"kind": "wshs",
                          "params": {"base": {"kind": "entropy", "params": {}},
                                     "window": 3}}
      },
      "experiment": {"batch_size": 25, "rounds": 10, "repeats": 3, "seed": 7},
      "runner": {"n_jobs": 2, "checkpoint_dir": null, ...},
      "report": {"targets": [], "plot": false}
    }

``repro run --config file.json`` executes it; because the flag path
builds the identical spec internally, a config run is byte-identical to
the equivalent flag invocation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..core.strategies.base import strategy_capabilities
from ..exceptions import SpecError
from ..experiments.config import ExperimentConfig
from ..formats import EXPERIMENT_FORMAT, EXPERIMENT_VERSION
from ..ioutil import atomic_write_json
from .core import Spec, as_spec
from .data import DATASET_TASKS, build_dataset, build_split
from .models import build_model
from .strategies import build_strategy
from .transforms import ScenarioSpec

# EXPERIMENT_FORMAT / EXPERIMENT_VERSION come from :mod:`repro.formats`
# (the single source of truth for schema versions).

#: Runner options an experiment document may set (with their defaults).
RUNNER_DEFAULTS = {
    "n_jobs": 1,
    "checkpoint_dir": None,
    "resume": False,
    "max_retries": 0,
    "backoff": 0.0,
    "on_error": "raise",
    "start_method": None,
    # Distributed execution (repro.experiments.distributed): a non-null
    # queue_dir routes the grid through the broker-less work queue.
    "queue_dir": None,
    "queue_backend": "file",
    "local_workers": 1,
    "lease_ttl": 30.0,
    "timeout": None,
}

#: Report options an experiment document may set (with their defaults).
REPORT_DEFAULTS = {"targets": [], "plot": False}


def default_model_spec(task: str, epochs: int = 5) -> Spec:
    """The CLI's historical default model for a task family, as a spec."""
    if task == "text":
        return Spec(
            kind="linear", params={"epochs": epochs, "batch_size": 32, "seed": 0}
        )
    return Spec(kind="crf", params={"epochs": max(1, epochs // 2), "seed": 0})


def _section(payload: dict, key: str, defaults: dict) -> dict:
    """Validate one options section against its known keys + defaults."""
    section = payload.get(key, {})
    if not isinstance(section, dict):
        raise SpecError(f"experiment {key!r} section must be a dict")
    unknown = set(section) - set(defaults)
    if unknown:
        raise SpecError(f"unknown {key} option(s): {sorted(unknown)}")
    return {**defaults, **section}


@dataclass
class ExperimentSpec:
    """One declarative comparison grid (see module docstring)."""

    dataset: Spec
    strategies: "dict[str, Spec]"
    split: Spec = field(default_factory=lambda: Spec(kind="fraction"))
    model: "Spec | None" = None
    config: ExperimentConfig = field(default_factory=ExperimentConfig)
    runner: dict = field(default_factory=lambda: dict(RUNNER_DEFAULTS))
    report: dict = field(default_factory=lambda: dict(REPORT_DEFAULTS))
    #: Optional perturbation scenario applied by :meth:`build_datasets`.
    #: ``None`` (the default) keeps the document — and every artifact —
    #: byte-identical to pre-sweep experiments.
    scenario: "ScenarioSpec | None" = None

    def __post_init__(self) -> None:
        if not self.strategies:
            raise SpecError("experiment spec has no strategies")
        self.dataset = as_spec(self.dataset)
        self.split = as_spec(self.split)
        self.model = None if self.model is None else as_spec(self.model)
        self.strategies = {
            str(name): as_spec(spec) for name, spec in self.strategies.items()
        }
        self.runner = {**RUNNER_DEFAULTS, **self.runner}
        self.report = {**REPORT_DEFAULTS, **self.report}
        if self.scenario is not None:
            self.scenario = ScenarioSpec.from_dict(self.scenario)

    # -- (de)serialisation -------------------------------------------------

    def to_dict(self) -> dict:
        """The experiment as a plain JSON-compatible document."""
        shape = {
            "batch_size": self.config.batch_size,
            "rounds": self.config.rounds,
            "initial_size": self.config.initial_size,
            "repeats": self.config.repeats,
            "seed": self.config.seed,
            "history_backend": self.config.history_backend,
            "training_mode": self.config.training_mode,
        }
        if self.config.track_flips:
            # Emitted only when set: default documents keep their exact
            # historical byte shape.
            shape["track_flips"] = True
        document = {
            "format": EXPERIMENT_FORMAT,
            "version": EXPERIMENT_VERSION,
            "dataset": self.dataset.to_dict(),
            "split": self.split.to_dict(),
            "model": None if self.model is None else self.model.to_dict(),
            "strategies": {
                name: spec.to_dict() for name, spec in self.strategies.items()
            },
            "experiment": shape,
            "runner": dict(self.runner),
            "report": dict(self.report),
        }
        if self.scenario is not None:
            document["scenario"] = self.scenario.to_dict()
        return document

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentSpec":
        if not isinstance(payload, dict) or payload.get("format") != EXPERIMENT_FORMAT:
            raise SpecError(f"not a {EXPERIMENT_FORMAT!r} document")
        if payload.get("version") != EXPERIMENT_VERSION:
            raise SpecError(
                f"unsupported experiment version {payload.get('version')!r} "
                f"(this build reads version {EXPERIMENT_VERSION})"
            )
        known = {
            "format", "version", "dataset", "split", "model", "strategies",
            "experiment", "runner", "report", "scenario",
        }
        unknown = set(payload) - known
        if unknown:
            raise SpecError(f"unknown experiment key(s): {sorted(unknown)}")
        if "dataset" not in payload:
            raise SpecError("experiment spec has no 'dataset'")
        strategies = payload.get("strategies")
        if not isinstance(strategies, dict) or not strategies:
            raise SpecError(
                "experiment 'strategies' must be a non-empty object mapping "
                "display names to strategy specs"
            )
        shape = payload.get("experiment", {})
        if not isinstance(shape, dict):
            raise SpecError("experiment 'experiment' section must be a dict")
        unknown_shape = set(shape) - {
            "batch_size", "rounds", "initial_size", "repeats", "seed",
            "history_backend", "training_mode", "track_flips",
        }
        if unknown_shape:
            raise SpecError(f"unknown experiment option(s): {sorted(unknown_shape)}")
        scenario = payload.get("scenario")
        return cls(
            dataset=as_spec(payload["dataset"]),
            split=as_spec(payload.get("split", {"kind": "fraction"})),
            model=None if payload.get("model") is None else as_spec(payload["model"]),
            strategies={name: as_spec(spec) for name, spec in strategies.items()},
            config=ExperimentConfig(**shape),
            runner=_section(payload, "runner", RUNNER_DEFAULTS),
            report=_section(payload, "report", REPORT_DEFAULTS),
            scenario=None if scenario is None else ScenarioSpec.from_dict(scenario),
        )

    @classmethod
    def from_file(cls, path: "str | Path") -> "ExperimentSpec":
        """Load and validate an ``experiment.json`` document."""
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise SpecError(f"cannot read experiment file {path}: {error}") from error
        return cls.from_dict(payload)

    def save(self, path: "str | Path") -> None:
        """Atomically write the document to ``path``."""
        atomic_write_json(path, self.to_dict())

    # -- building ----------------------------------------------------------

    @property
    def task(self) -> str:
        """The dataset's task family ("text" or "ner")."""
        kind = self.dataset.kind
        if kind not in DATASET_TASKS:
            known = ", ".join(sorted(DATASET_TASKS))
            raise SpecError(f"unknown dataset kind {kind!r}; known: {known}")
        return DATASET_TASKS[kind]

    def resolved_model(self) -> Spec:
        """The model spec, defaulted from the task family when omitted."""
        return self.model if self.model is not None else default_model_spec(self.task)

    def build_datasets(self) -> tuple[object, object, str]:
        """Build ``(train, test, task)`` from the dataset + split specs.

        When the document carries a ``scenario`` section, its transforms
        are applied (deterministically, from the scenario's own RNG
        streams) after the split — so every consumer that rebuilds data
        from the spec (serial runner, spawn pools, distributed workers,
        the session service) sees the identical perturbed datasets.
        """
        dataset, task = build_dataset(self.dataset)
        train, test = build_split(self.split, dataset)
        if self.scenario is not None:
            train, test = self.scenario.apply(train, test)
        return train, test, task

    def scenario_fingerprint(self) -> "dict | None":
        """The scenario's checkpoint-fingerprint dict (``None`` if inert)."""
        if self.scenario is None:
            return None
        return self.scenario.fingerprint()

    def annotation_costs(self, train) -> "object | None":
        """Per-sample annotation costs for the (perturbed) train pool."""
        if self.scenario is None:
            return None
        return self.scenario.costs(train)

    def validate(self) -> list[str]:
        """Build every component once; returns human-readable notes.

        Raises the first construction problem as
        :class:`~repro.exceptions.SpecError` (or the constructor's own
        :class:`~repro.exceptions.ConfigurationError`), so a bad document
        fails here instead of mid-grid.
        """
        train, test, task = self.build_datasets()
        notes = [
            f"dataset: {self.dataset.kind} ({task}), "
            f"{len(train)} pool / {len(test)} test samples"
        ]
        if self.scenario is not None:
            self.scenario.validate()
            kinds = ", ".join(s.kind for s in self.scenario.transforms) or "identity"
            notes.append(
                f"scenario: {self.scenario.name or '(unnamed)'} "
                f"(seed {self.scenario.seed}): {kinds}"
            )
        model = build_model(self.resolved_model())
        notes.append(f"model: {type(model).__name__}")
        for name, spec in self.strategies.items():
            strategy = build_strategy(spec)
            tags = []
            capabilities = strategy_capabilities(strategy)
            if capabilities["model_only_scores"] or (
                capabilities.get("base", {}).get("model_only_scores")
            ):
                tags.append("model-only scores")
            if capabilities["requires_model_history"]:
                tags.append(
                    f"retains {capabilities['requires_model_history']} models"
                )
            suffix = f" [{', '.join(tags)}]" if tags else ""
            notes.append(f"strategy {name!r}: {strategy.name}{suffix}")
        needed = self.config.labels_needed
        if needed > len(train):
            raise SpecError(
                f"experiment needs {needed} pool samples "
                f"(initial_size + rounds * batch_size) but the training "
                f"pool has only {len(train)}"
            )
        notes.append(
            f"grid: {len(self.strategies)} strategies x {self.config.repeats} "
            f"repeats, {self.config.rounds} rounds of {self.config.batch_size} "
            f"({needed} of {len(train)} pool samples per run)"
        )
        return notes


def default_experiment_spec() -> ExperimentSpec:
    """A small, runnable starting-point document for ``config show``."""
    return ExperimentSpec(
        dataset=Spec(kind="mr", params={"scale": 0.2, "seed": 7}),
        split=Spec(kind="fraction", params={"test_fraction": 0.3}),
        model=default_model_spec("text"),
        strategies={
            "random": Spec(kind="random"),
            "entropy": Spec(kind="entropy"),
            "wshs:entropy": Spec(
                kind="wshs",
                params={"base": {"kind": "entropy", "params": {}}, "window": 3},
            ),
        },
        config=ExperimentConfig(batch_size=25, rounds=10, repeats=3, seed=7),
    )

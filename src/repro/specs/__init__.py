"""Declarative specs: build strategies, models, datasets, and experiments
from pure JSON — and serialise them back.

The construction paths used to be ad-hoc lambdas (closures that neither
pickle nor checkpoint).  This package replaces them with small, versioned
:class:`~repro.specs.core.Spec` values and per-layer registries, so:

* experiment workers can be started with ``spawn`` (only data crosses
  the process boundary),
* checkpoints embed the specs that produced them and staleness checks
  compare specs rather than repr strings,
* the paper's full comparison grid is one reviewable ``experiment.json``
  (``repro run --config``).

See DESIGN.md §10 for the schema, versioning, and extension points.
"""

from .core import SPEC_VERSION, Spec, SpecRegistry, as_spec, is_spec_like
from .data import (
    DATASET_REGISTRY,
    SPLIT_REGISTRY,
    build_dataset,
    build_split,
    dataset_kinds,
    register_dataset,
)
from .experiment import (
    EXPERIMENT_FORMAT,
    EXPERIMENT_VERSION,
    ExperimentSpec,
    default_experiment_spec,
    default_model_spec,
)
from .metrics import (
    METRIC_REGISTRY,
    build_metric,
    build_pipeline,
    default_metric_specs,
    metric_kinds,
)
from .models import (
    MODEL_REGISTRY,
    build_model,
    model_kinds,
    register_model,
    spec_of_model,
)
from .strategies import (
    STRATEGY_REGISTRY,
    build_strategy,
    parse_strategy_shorthand,
    register_simple_strategy,
    register_wrapper_strategy,
    spec_of_strategy,
    strategy_kinds,
)
from .sweep import SweepAxis, SweepCell, SweepSpec
from .transforms import (
    TRANSFORM_REGISTRY,
    ScenarioSpec,
    build_transform,
    transform_kinds,
)

__all__ = [
    "DATASET_REGISTRY",
    "EXPERIMENT_FORMAT",
    "EXPERIMENT_VERSION",
    "ExperimentSpec",
    "METRIC_REGISTRY",
    "MODEL_REGISTRY",
    "SPEC_VERSION",
    "SPLIT_REGISTRY",
    "STRATEGY_REGISTRY",
    "ScenarioSpec",
    "Spec",
    "SpecRegistry",
    "SweepAxis",
    "SweepCell",
    "SweepSpec",
    "TRANSFORM_REGISTRY",
    "as_spec",
    "build_metric",
    "build_pipeline",
    "build_dataset",
    "build_model",
    "build_split",
    "build_strategy",
    "build_transform",
    "dataset_kinds",
    "default_experiment_spec",
    "default_metric_specs",
    "default_model_spec",
    "is_spec_like",
    "metric_kinds",
    "model_kinds",
    "parse_strategy_shorthand",
    "register_dataset",
    "register_model",
    "register_simple_strategy",
    "register_wrapper_strategy",
    "spec_of_model",
    "spec_of_strategy",
    "strategy_kinds",
    "transform_kinds",
]

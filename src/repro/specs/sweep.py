"""The sweep document: a scenario grid over one base experiment.

A *sweep spec* (format ``repro.sweep`` v1) crosses a base experiment
document with perturbation axes::

    {
      "format": "repro.sweep",
      "version": 1,
      "name": "noise_grid",
      "base": { ...a "repro.experiment" v1 document, no scenario... },
      "scenario_seed": 0,
      "axes": [
        {"name": "noise", "cells": [
          {"name": "clean"},
          {"name": "p10",
           "transforms": [{"kind": "label_noise", "params": {"rate": 0.1}}]}
        ]},
        {"name": "shape", "cells": [
          {"name": "b25", "experiment": {"batch_size": 25}},
          {"name": "b50", "experiment": {"batch_size": 50}}
        ]}
      ],
      "metrics": [{"kind": "final"}, {"kind": "speedup"}]
    }

The grid is the cross-product of the axes.  Each grid cell derives a
full :class:`~repro.specs.experiment.ExperimentSpec` from the base
document: ``experiment`` shape overrides merge (later axes win) and
``transforms`` lists concatenate in axis order into one scenario whose
seed is the sweep's ``scenario_seed``.  A cell whose combined transform
list is empty gets **no** scenario section at all, so the degenerate
1x1 sweep with no perturbations derives a document byte-identical to
the base — and therefore reproduces ``repro run --config`` exactly.

The base document must not carry its own ``scenario`` section: the
sweep owns the perturbation layer, and a hidden base scenario would
silently compose under every cell.
"""

from __future__ import annotations

import copy
import hashlib
import json
from collections.abc import Mapping
from dataclasses import dataclass
from pathlib import Path

from ..exceptions import SpecError
from ..formats import SWEEP_FORMAT, SWEEP_VERSION
from ..ioutil import atomic_write_json
from .core import Spec, as_spec
from .experiment import ExperimentSpec
from .metrics import build_pipeline
from .transforms import build_transform

#: Experiment-shape keys a cell's ``experiment`` override may set.
_SHAPE_KEYS = {
    "batch_size", "rounds", "initial_size", "repeats", "seed",
    "history_backend", "training_mode", "track_flips",
}


@dataclass(frozen=True)
class SweepAxisCell:
    """One value on one axis: a name plus its patches to the base."""

    name: str
    transforms: "tuple[dict, ...]" = ()
    experiment: "Mapping | None" = None

    @classmethod
    def from_dict(cls, payload, axis: str) -> "SweepAxisCell":
        if not isinstance(payload, Mapping):
            raise SpecError(f"axis {axis!r}: each cell must be a dict")
        unknown = set(payload) - {"name", "transforms", "experiment"}
        if unknown:
            raise SpecError(f"axis {axis!r}: unknown cell key(s): {sorted(unknown)}")
        name = payload.get("name")
        if not isinstance(name, str) or not name:
            raise SpecError(f"axis {axis!r}: every cell needs a non-empty 'name'")
        transforms = payload.get("transforms", [])
        if not isinstance(transforms, (list, tuple)):
            raise SpecError(f"axis {axis!r} cell {name!r}: 'transforms' must be a list")
        experiment = payload.get("experiment", {})
        if not isinstance(experiment, Mapping):
            raise SpecError(f"axis {axis!r} cell {name!r}: 'experiment' must be a dict")
        unknown_shape = set(experiment) - _SHAPE_KEYS
        if unknown_shape:
            raise SpecError(
                f"axis {axis!r} cell {name!r}: unknown experiment "
                f"override(s): {sorted(unknown_shape)}"
            )
        return cls(
            name=name,
            transforms=tuple(as_spec(t).to_dict() for t in transforms),
            experiment=dict(experiment),
        )

    def to_dict(self) -> dict:
        """Serialize the cell to its document form."""
        payload: dict = {"name": self.name}
        if self.transforms:
            payload["transforms"] = [dict(t) for t in self.transforms]
        if self.experiment:
            payload["experiment"] = dict(self.experiment)
        return payload


@dataclass(frozen=True)
class SweepAxis:
    """One named axis of the grid."""

    name: str
    cells: "tuple[SweepAxisCell, ...]"

    @classmethod
    def from_dict(cls, payload) -> "SweepAxis":
        if not isinstance(payload, Mapping):
            raise SpecError("each sweep axis must be a dict")
        unknown = set(payload) - {"name", "cells"}
        if unknown:
            raise SpecError(f"unknown axis key(s): {sorted(unknown)}")
        name = payload.get("name")
        if not isinstance(name, str) or not name:
            raise SpecError("every sweep axis needs a non-empty 'name'")
        cells = payload.get("cells")
        if not isinstance(cells, (list, tuple)) or not cells:
            raise SpecError(f"axis {name!r} needs a non-empty 'cells' list")
        parsed = tuple(SweepAxisCell.from_dict(cell, name) for cell in cells)
        names = [cell.name for cell in parsed]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise SpecError(f"axis {name!r}: duplicate cell name(s): {sorted(duplicates)}")
        return cls(name=name, cells=parsed)

    def to_dict(self) -> dict:
        """Serialize the axis to its document form."""
        return {"name": self.name, "cells": [cell.to_dict() for cell in self.cells]}


def _slugify(text: str) -> str:
    return "".join(ch if ch.isalnum() or ch in "._-" else "-" for ch in text)


class SweepCell:
    """One grid cell: coordinates, axis names, and the derived experiment."""

    def __init__(self, coords: "tuple[int, ...]", names: "tuple[str, ...]",
                 document: dict) -> None:
        self.coords = tuple(coords)
        self.names = tuple(names)
        self.document = document
        self._spec: "ExperimentSpec | None" = None

    @property
    def key(self) -> str:
        """Human-readable cell id, e.g. ``p10/b50`` (empty for 0 axes)."""
        return "/".join(self.names)

    @property
    def slug(self) -> str:
        """Filesystem-safe unique cell directory name.

        The short hash covers the full derived document, so two cells
        whose names sanitise identically (or whose patches changed
        between sweep versions) never share a checkpoint directory.
        """
        digest = hashlib.sha256(
            json.dumps(self.document, sort_keys=True).encode()
        ).hexdigest()[:8]
        base = "__".join(_slugify(name) for name in self.names) or "cell"
        return f"{base}-{digest}"

    @property
    def spec(self) -> ExperimentSpec:
        if self._spec is None:
            self._spec = ExperimentSpec.from_dict(self.document)
        return self._spec

    def __repr__(self) -> str:
        return f"SweepCell({self.key!r} @ {self.coords})"


class SweepSpec:
    """One declarative scenario grid (see module docstring)."""

    def __init__(
        self,
        base: dict,
        axes: "tuple[SweepAxis, ...]" = (),
        name: str = "",
        scenario_seed: int = 0,
        metrics: "list[Spec] | None" = None,
    ) -> None:
        if not isinstance(base, Mapping):
            raise SpecError("sweep 'base' must be an experiment document (dict)")
        if base.get("scenario") is not None:
            raise SpecError(
                "the sweep base document must not carry a 'scenario' section "
                "(scenarios come from the sweep axes)"
            )
        self.base = copy.deepcopy(dict(base))
        self.axes = tuple(axes)
        self.name = str(name)
        self.scenario_seed = int(scenario_seed)
        self.metrics = None if metrics is None else [as_spec(m) for m in metrics]
        names = [axis.name for axis in self.axes]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise SpecError(f"duplicate axis name(s): {sorted(duplicates)}")

    # -- (de)serialisation -------------------------------------------------

    def to_dict(self) -> dict:
        """Serialize the sweep to its JSON document form."""
        document = {
            "format": SWEEP_FORMAT,
            "version": SWEEP_VERSION,
            "name": self.name,
            "base": copy.deepcopy(self.base),
            "scenario_seed": self.scenario_seed,
            "axes": [axis.to_dict() for axis in self.axes],
        }
        if self.metrics is not None:
            document["metrics"] = [spec.to_dict() for spec in self.metrics]
        return document

    @classmethod
    def from_dict(cls, payload: dict) -> "SweepSpec":
        if not isinstance(payload, dict) or payload.get("format") != SWEEP_FORMAT:
            raise SpecError(f"not a {SWEEP_FORMAT!r} document")
        if payload.get("version") != SWEEP_VERSION:
            raise SpecError(
                f"unsupported sweep version {payload.get('version')!r} "
                f"(this build reads version {SWEEP_VERSION})"
            )
        known = {"format", "version", "name", "base", "scenario_seed", "axes", "metrics"}
        unknown = set(payload) - known
        if unknown:
            raise SpecError(f"unknown sweep key(s): {sorted(unknown)}")
        if "base" not in payload:
            raise SpecError("sweep spec has no 'base' experiment document")
        axes = payload.get("axes", [])
        if not isinstance(axes, (list, tuple)):
            raise SpecError("sweep 'axes' must be a list")
        metrics = payload.get("metrics")
        if metrics is not None and not isinstance(metrics, (list, tuple)):
            raise SpecError("sweep 'metrics' must be a list of metric specs")
        return cls(
            base=payload["base"],
            axes=tuple(SweepAxis.from_dict(axis) for axis in axes),
            name=payload.get("name", ""),
            scenario_seed=payload.get("scenario_seed", 0),
            metrics=None if metrics is None else list(metrics),
        )

    @classmethod
    def from_file(cls, path: "str | Path") -> "SweepSpec":
        """Load and validate a ``sweep.json`` document."""
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise SpecError(f"cannot read sweep file {path}: {error}") from error
        return cls.from_dict(payload)

    def save(self, path: "str | Path") -> None:
        """Atomically write the document to ``path``."""
        atomic_write_json(path, self.to_dict())

    # -- the grid ----------------------------------------------------------

    @property
    def shape(self) -> "tuple[int, ...]":
        return tuple(len(axis.cells) for axis in self.axes)

    def __len__(self) -> int:
        total = 1
        for extent in self.shape:
            total *= extent
        return total

    def cell(self, coords: "tuple[int, ...]") -> SweepCell:
        """Derive the grid cell at ``coords`` (one index per axis)."""
        if len(coords) != len(self.axes):
            raise SpecError(
                f"cell coords {coords} do not match {len(self.axes)} axes"
            )
        document = copy.deepcopy(self.base)
        names: list[str] = []
        transforms: list[dict] = []
        overrides: dict = {}
        for axis, index in zip(self.axes, coords):
            picked = axis.cells[index]
            names.append(picked.name)
            transforms.extend(copy.deepcopy(list(picked.transforms)))
            overrides.update(picked.experiment or {})
        if overrides:
            shape = dict(document.get("experiment", {}))
            shape.update(overrides)
            document["experiment"] = shape
        if transforms:
            scenario_name = "/".join(names)
            document["scenario"] = {
                "name": scenario_name,
                "seed": self.scenario_seed,
                "transforms": transforms,
            }
        return SweepCell(tuple(coords), tuple(names), document)

    def cells(self) -> "list[SweepCell]":
        """Every grid cell, last axis fastest (row-major)."""
        coords_list: "list[tuple[int, ...]]" = [()]
        for extent in self.shape:
            coords_list = [
                coords + (index,)
                for coords in coords_list
                for index in range(extent)
            ]
        return [self.cell(coords) for coords in coords_list]

    # -- validation --------------------------------------------------------

    def metric_pipeline(self):
        """The sweep's :class:`~repro.eval.pipeline.MetricPipeline`."""
        return build_pipeline(self.metrics)

    def validate(self) -> list[str]:
        """Validate the base, every transform, every cell, and the metrics.

        Returns human-readable notes; raises
        :class:`~repro.exceptions.SpecError` on the first problem.
        """
        pipeline = self.metric_pipeline()
        notes = [
            f"sweep: {self.name or '(unnamed)'}, "
            f"{'x'.join(map(str, self.shape)) or '1'} grid "
            f"({len(self)} cell{'s' if len(self) != 1 else ''})",
            f"metrics: {', '.join(pipeline.labels())}",
        ]
        for axis in self.axes:
            for picked in axis.cells:
                for transform in picked.transforms:
                    build_transform(transform)
        base = ExperimentSpec.from_dict(copy.deepcopy(self.base))
        notes.append(f"base dataset: {base.dataset.kind}")
        for cell in self.cells():
            cell.spec.validate()
            notes.append(f"cell {cell.key or '(degenerate)'}: ok [{cell.slug}]")
        return notes

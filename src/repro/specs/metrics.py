"""Metric specs: the pluggable columns of sweep reports and service status.

Each registered kind builds one :class:`~repro.eval.pipeline.Metric`::

    {"kind": "speedup", "params": {"fraction": 0.9, "baseline": "random"}}

``default_metric_specs()`` is what a sweep (or the service status
endpoint) uses when the document does not name metrics explicitly: the
historical accuracy/F1 summary (``final``), the normalised AUC, and the
three actionable metrics — speed-up vs. the random baseline,
contradiction rate from the history's label-flip records, and the
cost-normalised AUC.
"""

from __future__ import annotations

from ..eval.pipeline import (
    AUCMetric,
    ContradictionMetric,
    CostAUCMetric,
    FinalMetric,
    Metric,
    MetricPipeline,
    SpeedupMetric,
)
from .core import Spec, SpecRegistry

METRIC_REGISTRY = SpecRegistry("metric")


def _metric_builder(cls):
    def build(params: dict) -> Metric:
        return cls(**params)

    return build


def _metric_params(metric: Metric) -> dict:
    return metric.params()


for _cls in (FinalMetric, AUCMetric, SpeedupMetric, ContradictionMetric, CostAUCMetric):
    METRIC_REGISTRY.register(
        _cls.kind, _metric_builder(_cls), cls=_cls, params_of=_metric_params
    )


def build_metric(spec) -> Metric:
    """Build one metric from its spec."""
    return METRIC_REGISTRY.build(spec)


def metric_kinds() -> list[str]:
    """Sorted registered metric kinds."""
    return METRIC_REGISTRY.kinds()


def default_metric_specs() -> "list[Spec]":
    """The default metric columns (see module docstring)."""
    return [
        Spec(kind="final"),
        Spec(kind="auc"),
        Spec(kind="speedup"),
        Spec(kind="contradiction"),
        Spec(kind="cost_auc"),
    ]


def build_pipeline(specs=None) -> MetricPipeline:
    """A :class:`MetricPipeline` from metric specs (defaults when None)."""
    if specs is None:
        specs = default_metric_specs()
    return MetricPipeline([build_metric(spec) for spec in specs])

"""Deterministic random-number helpers.

Every stochastic component of the library (data generators, model
initialisation, strategy tie-breaking, experiment repetition) accepts either
an integer seed or a :class:`numpy.random.Generator`.  Routing all of them
through :func:`ensure_rng` keeps experiments bit-for-bit reproducible while
still letting callers share one generator across components when they want
correlated streams.
"""

from __future__ import annotations

import numpy as np

from .exceptions import ConfigurationError

#: Seed used by components when the caller does not provide one.
DEFAULT_SEED = 20201218  # the paper's DOI registration date, for flavour

RngLike = "int | np.random.Generator | None"


def ensure_rng(seed_or_rng: "int | np.random.Generator | None" = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed_or_rng``.

    Parameters
    ----------
    seed_or_rng:
        ``None`` (use :data:`DEFAULT_SEED`), an integer seed, or an
        existing generator which is returned unchanged.

    Raises
    ------
    ConfigurationError
        If the argument is neither ``None``, an integer, nor a generator.
    """
    if seed_or_rng is None:
        return np.random.default_rng(DEFAULT_SEED)
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    if isinstance(seed_or_rng, (int, np.integer)):
        if seed_or_rng < 0:
            raise ConfigurationError(f"seed must be non-negative, got {seed_or_rng}")
        return np.random.default_rng(int(seed_or_rng))
    raise ConfigurationError(
        f"expected an int seed or numpy Generator, got {type(seed_or_rng).__name__}"
    )


def rng_state(rng: np.random.Generator) -> dict:
    """The bit-generator state of ``rng`` as a JSON-serialisable dict.

    The default PCG64 state is plain Python ints already; bit generators
    whose state embeds numpy arrays (e.g. MT19937's key vector) have the
    arrays converted to tagged lists so the dict survives a JSON round
    trip.  :func:`rng_from_state` reverses the conversion exactly, so a
    generator restored from the returned dict produces the same stream
    as the original from this point on.
    """
    return _state_to_jsonable(rng.bit_generator.state)


def rng_from_state(state: dict) -> np.random.Generator:
    """Rebuild a generator from a :func:`rng_state` dict.

    Raises
    ------
    ConfigurationError
        If the state names an unknown bit-generator class.
    """
    if not isinstance(state, dict) or "bit_generator" not in state:
        raise ConfigurationError("not a bit-generator state dict")
    name = state["bit_generator"]
    bit_generator_cls = getattr(np.random, str(name), None)
    if bit_generator_cls is None or not isinstance(bit_generator_cls, type):
        raise ConfigurationError(f"unknown bit generator {name!r}")
    bit_generator = bit_generator_cls()
    bit_generator.state = _state_from_jsonable(state)
    return np.random.Generator(bit_generator)


def _state_to_jsonable(value):
    if isinstance(value, dict):
        return {key: _state_to_jsonable(entry) for key, entry in value.items()}
    if isinstance(value, np.ndarray):
        return {"__ndarray__": value.tolist(), "dtype": value.dtype.str}
    if isinstance(value, np.integer):
        return int(value)
    return value


def _state_from_jsonable(value):
    if isinstance(value, dict):
        if "__ndarray__" in value:
            return np.asarray(value["__ndarray__"], dtype=np.dtype(value["dtype"]))
        return {key: _state_from_jsonable(entry) for key, entry in value.items()}
    return value


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    Child streams do not overlap with each other or with the parent, so a
    multi-repeat experiment can hand one child to each repetition.
    """
    if n < 0:
        raise ConfigurationError(f"cannot spawn a negative number of generators: {n}")
    seeds = rng.integers(0, 2**63 - 1, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]

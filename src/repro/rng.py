"""Deterministic random-number helpers.

Every stochastic component of the library (data generators, model
initialisation, strategy tie-breaking, experiment repetition) accepts either
an integer seed or a :class:`numpy.random.Generator`.  Routing all of them
through :func:`ensure_rng` keeps experiments bit-for-bit reproducible while
still letting callers share one generator across components when they want
correlated streams.
"""

from __future__ import annotations

import numpy as np

from .exceptions import ConfigurationError

#: Seed used by components when the caller does not provide one.
DEFAULT_SEED = 20201218  # the paper's DOI registration date, for flavour

RngLike = "int | np.random.Generator | None"


def ensure_rng(seed_or_rng: "int | np.random.Generator | None" = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed_or_rng``.

    Parameters
    ----------
    seed_or_rng:
        ``None`` (use :data:`DEFAULT_SEED`), an integer seed, or an
        existing generator which is returned unchanged.

    Raises
    ------
    ConfigurationError
        If the argument is neither ``None``, an integer, nor a generator.
    """
    if seed_or_rng is None:
        return np.random.default_rng(DEFAULT_SEED)
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    if isinstance(seed_or_rng, (int, np.integer)):
        if seed_or_rng < 0:
            raise ConfigurationError(f"seed must be non-negative, got {seed_or_rng}")
        return np.random.default_rng(int(seed_or_rng))
    raise ConfigurationError(
        f"expected an int seed or numpy Generator, got {type(seed_or_rng).__name__}"
    )


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    Child streams do not overlap with each other or with the parent, so a
    multi-repeat experiment can hand one child to each repetition.
    """
    if n < 0:
        raise ConfigurationError(f"cannot spawn a negative number of generators: {n}")
    seeds = rng.integers(0, 2**63 - 1, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]

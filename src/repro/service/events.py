"""Incremental per-session event feeds for service clients.

The engine announces its lifecycle through
:class:`~repro.core.events.SessionObserver` hooks, which pass *live*
objects (the fitted model, numpy score vectors).  Remote clients cannot
receive those, so :class:`SessionEventFeed` is the adapter: it observes
one hosted session and appends a JSON-safe record per event, each tagged
with a monotonically increasing ``seq``.  Clients poll
``GET /sessions/{id}/events?after=N`` and receive exactly the events
with ``seq > N`` — an at-least-once, in-order, resumable stream without
any server-side push machinery.
"""

from __future__ import annotations

import threading

import numpy as np

from ..core.events import SessionObserver

__all__ = ["SessionEventFeed"]


def _float_or_none(value) -> "float | None":
    """``value`` as a plain float, with NaN mapped to ``None`` (JSON-safe)."""
    number = float(value)
    return None if np.isnan(number) else number


class SessionEventFeed(SessionObserver):
    """Observer that buffers a session's lifecycle as JSON-safe events.

    Every event is a dict with at least ``seq`` (1-based, strictly
    increasing) and ``event`` (the observer hook name); the remaining
    keys are the hook's payload reduced to JSON scalars and lists —
    indices become plain ints, score vectors become summary statistics,
    the final result becomes its round count and metric curve.  The feed
    is thread-safe: the engine thread appends while client threads read.

    ``max_events`` bounds memory per session; when the buffer is full
    the oldest events are dropped (their ``seq`` numbers are never
    reused, so a poller that fell behind sees the gap rather than
    silently wrong data).
    """

    def __init__(self, max_events: int = 1000) -> None:
        self._lock = threading.Lock()
        self._events: list[dict] = []
        self._seq = 0
        self.max_events = int(max_events)

    def _append(self, event: str, payload: dict) -> None:
        """Tag ``payload`` with the next ``seq`` and buffer it."""
        with self._lock:
            self._seq += 1
            record = {"seq": self._seq, "event": event}
            record.update(payload)
            self._events.append(record)
            if len(self._events) > self.max_events:
                del self._events[: len(self._events) - self.max_events]

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recent event (0 if none yet)."""
        with self._lock:
            return self._seq

    def since(self, after: int = 0) -> list[dict]:
        """All buffered events with ``seq`` greater than ``after``.

        Returns copies, oldest first, so callers can serialize them
        without racing the engine thread.
        """
        with self._lock:
            return [dict(event) for event in self._events if event["seq"] > int(after)]

    def round_started(self, round_index: int, labeled_count: int) -> None:
        """Buffer a round-start marker with the current labeled count."""
        self._append(
            "round_started",
            {"round": int(round_index), "labeled_count": int(labeled_count)},
        )

    def model_trained(self, round_index: int, model, metric: float) -> None:
        """Buffer the round's held-out metric (the model itself is not
        serializable and stays server-side)."""
        self._append(
            "model_trained",
            {"round": int(round_index), "metric": _float_or_none(metric)},
        )

    def scores_computed(self, round_index: int, scores: np.ndarray) -> None:
        """Buffer summary statistics of the proposed batch's scores."""
        scores = np.asarray(scores, dtype=float)
        finite = scores[np.isfinite(scores)]
        self._append(
            "scores_computed",
            {
                "round": int(round_index),
                "count": int(scores.size),
                "mean": float(finite.mean()) if finite.size else None,
                "min": float(finite.min()) if finite.size else None,
                "max": float(finite.max()) if finite.size else None,
            },
        )

    def batch_selected(self, round_index: int, indices: np.ndarray) -> None:
        """Buffer the proposed batch as a plain list of pool indices."""
        self._append(
            "batch_selected",
            {
                "round": int(round_index),
                "indices": [int(index) for index in np.asarray(indices)],
            },
        )

    def round_committed(self, round_index: int, record) -> None:
        """Buffer a commit marker (with the round's metric when known)."""
        payload = {"round": int(round_index)}
        if record is not None:
            payload["metric"] = _float_or_none(record.metric)
        self._append("round_committed", payload)

    def session_finished(self, result) -> None:
        """Buffer the terminal event with the full metric curve."""
        self._append(
            "session_finished",
            {
                "rounds": len(result.records),
                "curve": [_float_or_none(record.metric) for record in result.records],
            },
        )

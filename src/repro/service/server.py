"""Stdlib HTTP front end for the AL session service.

A thin JSON-over-HTTP skin on :func:`repro.service.app.dispatch`:
:class:`SessionHTTPServer` is a ``ThreadingHTTPServer`` (one thread per
request, so many sessions train concurrently), and the handler does
nothing but decode the request and encode the dispatch result.  All
routing, locking, and error mapping live in the app layer — which is
exactly why an HTTP-driven session behaves byte-identically to an
in-process one.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qsl, urlsplit

from .app import SessionService, dispatch

__all__ = ["SessionHTTPServer", "SessionRequestHandler", "make_server"]


class SessionRequestHandler(BaseHTTPRequestHandler):
    """Translates one HTTP request to a :func:`~repro.service.app.dispatch` call.

    Request bodies are JSON (read via ``Content-Length``); responses are
    ``application/json`` with the status code dispatch chose.  A body
    that is not valid JSON is rejected with 400 before touching the
    service.
    """

    #: Stable even if the service lives behind a proxy that sniffs it.
    protocol_version = "HTTP/1.1"

    def _read_body(self) -> "dict | None":
        """The request's JSON body, ``None`` when empty."""
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return None
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ValueError(f"request body is not valid JSON: {error}") from error

    def _respond(self, status: int, payload: dict) -> None:
        """Send ``payload`` as a JSON response with ``status``."""
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _handle(self, method: str) -> None:
        """Decode, dispatch, encode — shared by every HTTP verb."""
        url = urlsplit(self.path)
        try:
            body = self._read_body()
        except ValueError as error:
            self._respond(400, {"error": str(error), "error_type": "ServiceError"})
            return
        status, payload = dispatch(
            self.server.service, method, url.path, dict(parse_qsl(url.query)), body
        )
        self._respond(status, payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        """Serve a GET request."""
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        """Serve a POST request."""
        self._handle("POST")

    def do_DELETE(self) -> None:  # noqa: N802 - http.server naming
        """Serve a DELETE request."""
        self._handle("DELETE")

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Silence the default per-request stderr line (servers that want
        request logs attach a :class:`~repro.service.SessionEventFeed` or
        wrap dispatch instead)."""


class SessionHTTPServer(ThreadingHTTPServer):
    """``ThreadingHTTPServer`` carrying the :class:`SessionService`.

    Each request runs on its own daemon thread, so slow operations (a
    retrain inside ``propose``) never block other sessions; requests on
    the *same* session serialise on the service's per-session lock.
    """

    daemon_threads = True

    def __init__(self, address, service: SessionService) -> None:
        super().__init__(address, SessionRequestHandler)
        self.service = service


def make_server(
    service: SessionService, host: str = "127.0.0.1", port: int = 0
) -> SessionHTTPServer:
    """Bind a :class:`SessionHTTPServer` (``port=0`` picks a free port).

    The server is bound but not serving; call ``serve_forever()`` (often
    on a background thread) and ``shutdown()`` to stop.  The chosen port
    is ``server.server_address[1]``.
    """
    return SessionHTTPServer((host, port), service)

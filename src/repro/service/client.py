"""Client for the AL session service, over HTTP or in process.

:class:`SessionClient` wraps the service API in plain Python methods.
It speaks through a transport:

* :class:`InProcessTransport` calls :func:`repro.service.app.dispatch`
  directly on a local :class:`~repro.service.app.SessionService` — no
  sockets, no serialisation beyond the JSON round-trip, no dependencies.
  The file-based ``repro session`` CLI runs on this transport.
* :class:`HttpTransport` speaks JSON over HTTP via ``urllib`` to a
  :mod:`repro.service.server` (or anything else that serves the API).

Both transports return the same ``(status, payload)`` pairs, and error
payloads carry the server-side exception class name, so the client
re-raises the *same* domain exception (:class:`IngestError`,
:class:`SessionError`, :class:`StoreConflictError`, ...) regardless of
transport — callers cannot tell the difference, which is the point.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from urllib.parse import urlencode

from ..exceptions import (
    ConfigurationError,
    IngestError,
    ServiceError,
    SessionError,
    SpecError,
    StoreConflictError,
    StoreError,
)
from .app import SessionService, dispatch

__all__ = ["HttpTransport", "InProcessTransport", "SessionClient"]

#: ``error_type`` payload values -> the exception class to re-raise.
_ERROR_TYPES = {
    cls.__name__: cls
    for cls in (
        ConfigurationError,
        IngestError,
        SessionError,
        SpecError,
        StoreConflictError,
        StoreError,
    )
}


class InProcessTransport:
    """Transport that dispatches straight onto a local service.

    Payloads still make one JSON round-trip, so a client on this
    transport sees exactly the document shapes HTTP clients see (plain
    lists and dicts, no live numpy arrays) — byte-identical behaviour,
    zero network.
    """

    def __init__(self, service: SessionService) -> None:
        self.service = service

    def request(self, method, path, query=None, body=None) -> "tuple[int, dict]":
        """Dispatch one request; returns ``(status, payload)``."""
        encoded = None if body is None else json.loads(json.dumps(body))
        status, payload = dispatch(self.service, method, path, query, encoded)
        return status, json.loads(json.dumps(payload))


class HttpTransport:
    """Transport that speaks JSON over HTTP via ``urllib``.

    ``base_url`` is the server root (``http://127.0.0.1:8700``).
    Connection-level failures (refused, unreachable, timeout) raise
    :class:`~repro.exceptions.ServiceError` with status 503; HTTP error
    statuses are returned to the client for domain-error mapping.
    """

    def __init__(self, base_url: str, timeout: float = 600.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)

    def request(self, method, path, query=None, body=None) -> "tuple[int, dict]":
        """Perform one HTTP request; returns ``(status, payload)``."""
        url = self.base_url + path
        if query:
            url += "?" + urlencode(query)
        data = None if body is None else json.dumps(body).encode("utf-8")
        request = urllib.request.Request(
            url,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.status, json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            raw = error.read().decode("utf-8", errors="replace")
            try:
                payload = json.loads(raw)
            except json.JSONDecodeError:
                payload = {"error": raw or str(error), "error_type": "ServiceError"}
            return error.code, payload
        except urllib.error.URLError as error:
            raise ServiceError(
                f"cannot reach session server at {self.base_url}: {error.reason}",
                status=503,
            ) from error


class SessionClient:
    """Typed façade over the session-service API.

    Methods return the service's JSON payloads unchanged; error
    responses are re-raised as the domain exception named in the
    payload's ``error_type`` (falling back to
    :class:`~repro.exceptions.ServiceError` carrying the HTTP status).
    """

    def __init__(self, transport) -> None:
        self.transport = transport

    @classmethod
    def in_process(cls, service: SessionService) -> "SessionClient":
        """A client bound directly to a local service instance."""
        return cls(InProcessTransport(service))

    @classmethod
    def http(cls, base_url: str, timeout: float = 600.0) -> "SessionClient":
        """A client speaking HTTP to ``base_url``."""
        return cls(HttpTransport(base_url, timeout=timeout))

    def _call(self, method, path, query=None, body=None) -> dict:
        """Issue one request, raising domain errors on failure statuses."""
        status, payload = self.transport.request(method, path, query, body)
        if status < 400:
            return payload
        message = payload.get("error", f"request failed with status {status}")
        error_cls = _ERROR_TYPES.get(payload.get("error_type"))
        if error_cls is not None:
            raise error_cls(message)
        raise ServiceError(message, status=status)

    def create(self, recipe: dict, session_id=None, store=None) -> dict:
        """Create a session; returns its id, shape, and stored recipe."""
        body = {"recipe": recipe}
        if session_id is not None:
            body["id"] = session_id
        if store is not None:
            body["store"] = store
        return self._call("POST", "/sessions", body=body)

    def propose(self, session_id: str) -> dict:
        """Advance to the next proposal (or the finished result)."""
        return self._call("POST", f"/sessions/{session_id}/propose")

    def ingest(self, session_id, indices=None, labels=None, oracle=False) -> dict:
        """Label the pending batch (explicitly, or via the oracle)."""
        body = {"oracle": True} if oracle else {"indices": indices, "labels": labels}
        return self._call("POST", f"/sessions/{session_id}/ingest", body=body)

    def status(self, session_id: str) -> dict:
        """The stored document (recipe + snapshot) and feed position."""
        return self._call("GET", f"/sessions/{session_id}")

    def result(self, session_id: str) -> dict:
        """The finished session's audit trail."""
        return self._call("GET", f"/sessions/{session_id}/result")

    def events(self, session_id: str, after: int = 0) -> dict:
        """Lifecycle events with ``seq`` greater than ``after``."""
        return self._call(
            "GET", f"/sessions/{session_id}/events", query={"after": after}
        )

    def delete(self, session_id: str) -> dict:
        """Delete the session from its store."""
        return self._call("DELETE", f"/sessions/{session_id}")

    def list_sessions(self) -> list:
        """All stored sessions as ``{"id", "store"}`` dicts."""
        return self._call("GET", "/sessions")["sessions"]

    def health(self) -> dict:
        """The server's liveness payload."""
        return self._call("GET", "/healthz")

"""The transport-independent AL session service.

:class:`SessionService` hosts many concurrent
:class:`~repro.core.session.SessionEngine` sessions, each addressed by
id and persisted through a pluggable
:class:`~repro.service.store.SessionStore`.  Every mutation follows the
same discipline: lock the session (serialising the threads of *this*
process), drive the engine, then write the updated document back with a
version-checked compare-and-swap (catching writers in *other*
processes).  A lost CAS surfaces as
:class:`~repro.exceptions.StoreConflictError` — HTTP 409 — and the
cached engine is dropped so the next request reloads the winner's state.

:func:`dispatch` maps ``(method, path, query, body)`` requests onto the
service and domain errors onto HTTP statuses.  It is the single routing
table both transports share: the :mod:`~repro.service.server` HTTP
front end and the :class:`~repro.service.client.InProcessTransport`
call the same function, which is what makes a session driven over HTTP
byte-identical to one driven in process.
"""

from __future__ import annotations

import math
import threading
from functools import partial
from types import SimpleNamespace

from ..core.session import SessionEngine, SessionState
from ..eval.curves import LearningCurve
from ..eval.pipeline import MetricContext
from ..exceptions import (
    ConfigurationError,
    IngestError,
    ReproError,
    ServiceError,
    SessionError,
    SpecError,
    StoreConflictError,
    StoreError,
)
from ..formats import SESSION_DIR_FORMAT, SESSION_DIR_VERSION
from ..ioutil import validate_envelope
from ..specs import (
    ExperimentSpec,
    Spec,
    build_dataset,
    build_model,
    build_pipeline,
    build_split,
    build_strategy,
    default_model_spec,
    parse_strategy_shorthand,
)
from .events import SessionEventFeed
from .store import SessionStore

__all__ = [
    "RECIPE_DEFAULTS",
    "SessionService",
    "build_session_components",
    "dispatch",
    "session_metrics",
]

#: Optional recipe keys and their defaults — the same values the
#: ``repro session init`` flags default to, so a minimal recipe
#: (``dataset`` + ``strategy``) behaves exactly like the minimal CLI
#: invocation.
RECIPE_DEFAULTS = {
    "scale": 0.2,
    "test_fraction": 0.3,
    "window": 3,
    "epochs": 5,
    "batch_size": 25,
    "rounds": 10,
    "initial_size": None,
    "seed": 7,
    "ranker": None,
    "training_mode": "cold",
}

#: Engine-shape settings every recipe flavour resolves to.
_SETTING_KEYS = ("batch_size", "rounds", "initial_size", "seed", "training_mode")


def _normalized_recipe(recipe) -> dict:
    """Fill a recipe's optional keys with :data:`RECIPE_DEFAULTS`.

    The caller's key order is preserved (a fully specified recipe passes
    through untouched — the byte-identity contract with the session
    CLI); missing optional keys are appended with their defaults.
    Experiment-based recipes (``{"experiment": ..., "strategy": ...}``)
    carry their configuration inside the experiment document and pass
    through unchanged.
    """
    if not isinstance(recipe, dict):
        raise ServiceError("recipe must be a JSON object", status=400)
    if "experiment" in recipe:
        return dict(recipe)
    if "dataset" not in recipe or "strategy" not in recipe:
        raise ServiceError(
            "recipe needs 'dataset' and 'strategy' (or an 'experiment' document)",
            status=400,
        )
    normalized = dict(recipe)
    for key, value in RECIPE_DEFAULTS.items():
        normalized.setdefault(key, value)
    return normalized


def build_session_components(recipe: dict):
    """Build ``(train, test, model, strategy, settings)`` from a recipe.

    Two recipe flavours:

    * a **flat recipe** — the dict the session CLI has always stored
      (``dataset``, ``scale``, ``strategy``, ``window``, ...); built
      through the identical spec shims the CLI used, so a recipe stored
      before the service existed reconstructs the same components.
    * an **experiment recipe** — ``{"experiment": <repro.experiment
      document>, "strategy": <name>}``: the session is created straight
      from a declarative :class:`~repro.specs.ExperimentSpec`, choosing
      one of its strategies (``strategy`` may be omitted when the
      document defines exactly one).

    ``settings`` holds the engine-shape parameters (``batch_size``,
    ``rounds``, ``initial_size``, ``seed``, ``training_mode``).
    Construction is deterministic given the recipe: every rebuild
    yields identical components, which is what lets a restored engine
    continue byte-identically.
    """
    recipe = _normalized_recipe(recipe)
    if "experiment" in recipe:
        spec = ExperimentSpec.from_dict(recipe["experiment"])
        names = list(spec.strategies)
        chosen = recipe.get("strategy")
        if chosen is None:
            if len(names) != 1:
                raise ServiceError(
                    f"experiment document defines {len(names)} strategies "
                    f"({names}); pass 'strategy' to pick one",
                    status=400,
                )
            chosen = names[0]
        if chosen not in spec.strategies:
            raise ServiceError(
                f"unknown strategy {chosen!r}; the experiment defines {names}",
                status=400,
            )
        train, test, _task = spec.build_datasets()
        model = build_model(spec.resolved_model().to_dict())
        strategy = build_strategy(spec.strategies[chosen].to_dict())
        settings = {
            "batch_size": spec.config.batch_size,
            "rounds": spec.config.rounds,
            "initial_size": spec.config.initial_size,
            "seed": spec.config.seed,
            "training_mode": spec.config.training_mode,
            "track_flips": spec.config.track_flips,
        }
        return train, test, model, strategy, settings
    dataset, task = build_dataset(
        Spec(kind=recipe["dataset"], params={"scale": recipe["scale"], "seed": recipe["seed"]})
    )
    train, test = build_split(
        Spec(kind="fraction", params={"test_fraction": recipe["test_fraction"]}), dataset
    )
    model = build_model(default_model_spec(task, recipe["epochs"]).to_dict())
    strategy = build_strategy(
        parse_strategy_shorthand(
            recipe["strategy"], window=recipe["window"], ranker_path=recipe["ranker"]
        ).to_dict()
    )
    settings = {key: recipe[key] for key in _SETTING_KEYS}
    return train, test, model, strategy, settings


def session_metrics(engine, recipe=None) -> dict:
    """The default metric pipeline over one session's curve so far.

    The same :class:`~repro.eval.pipeline.MetricPipeline` offline sweep
    reports use, fed the session's partial learning curve, history, and
    selection order — so the service's numbers agree with an offline
    evaluation of the identical run by construction.  Inapplicable
    metrics (speed-up without a baseline strategy, contradiction rate
    without ``track_flips``) come back as ``None``; before the first
    evaluated round the block is empty.
    """
    records = [r for r in engine.records if r.metric is not None]
    if not records:
        return {}
    name = engine.strategy.name
    curve = LearningCurve(
        [r.labeled_count for r in records],
        [r.metric for r in records],
        label=name,
    )
    costs = None
    if isinstance(recipe, dict) and "experiment" in recipe:
        try:
            costs = ExperimentSpec.from_dict(
                recipe["experiment"]
            ).annotation_costs(engine.train_dataset)
        except ReproError:
            costs = None
    run = SimpleNamespace(
        history=engine.history,
        selection_order=engine.selection_order,
        curve=lambda label="": curve,
    )
    computed = build_pipeline().compute(
        MetricContext(curves={name: curve}, runs={name: [run]}, costs=costs)
    )
    # NaN is not valid JSON; the wire format for "not applicable" is null.
    return {
        label: {
            strategy: (None if math.isnan(value) else value)
            for strategy, value in per_strategy.items()
        }
        for label, per_strategy in computed.items()
    }


class _LiveSession:
    """One hosted session: engine + recipe + event feed + lock + version."""

    def __init__(self, recipe, engine, feed, store_name, version) -> None:
        self.recipe = recipe
        self.engine = engine
        self.feed = feed
        self.store_name = store_name
        self.version = version
        self.lock = threading.Lock()


class SessionService:
    """Multi-tenant session host over one or more named stores.

    ``stores`` maps backend names (``"json"``, ``"sqlite"``, ...) to
    :class:`~repro.service.store.SessionStore` instances; ``create``
    requests pick one by name (``default_store`` otherwise).  Session
    ids are unique across *all* stores — a session is addressed by id
    alone, its store is an implementation detail recorded at creation.

    Engines are cached in memory per process and re-hydrated from the
    store on demand, so the service survives restarts and several
    service processes can share one sqlite store: the per-write CAS
    rejects whichever process lost a race.
    """

    def __init__(self, stores: "dict[str, SessionStore]", default_store: "str | None" = None) -> None:
        if not stores:
            raise ConfigurationError("SessionService needs at least one store")
        self.stores = dict(stores)
        self.default_store = default_store if default_store is not None else next(iter(self.stores))
        if self.default_store not in self.stores:
            raise ConfigurationError(
                f"default store {self.default_store!r} is not one of {sorted(self.stores)}"
            )
        self._lock = threading.Lock()
        self._live: dict[str, _LiveSession] = {}
        self._counter = 0

    # -- store plumbing ----------------------------------------------------

    def _store_named(self, name: str) -> SessionStore:
        """The store registered under ``name`` (400 if unknown)."""
        try:
            return self.stores[name]
        except KeyError:
            raise ServiceError(
                f"unknown store {name!r}; available: {sorted(self.stores)}", status=400
            ) from None

    def _find_store(self, session_id: str) -> "tuple[str, object] | None":
        """``(store_name, StoredSession)`` holding ``session_id``, or ``None``."""
        for name, store in self.stores.items():
            row = store.load(session_id)
            if row is not None:
                return name, row
        return None

    def _document(self, live: _LiveSession) -> dict:
        """The session's persistent document (the CLI's exact envelope)."""
        return {
            "format": SESSION_DIR_FORMAT,
            "version": SESSION_DIR_VERSION,
            "recipe": live.recipe,
            "session": live.engine.snapshot(),
        }

    def _save(self, session_id: str, live: _LiveSession) -> None:
        """CAS-write the session back; on conflict, drop the stale engine."""
        store = self._store_named(live.store_name)
        try:
            live.version = store.save(
                session_id, self._document(live), expected_version=live.version
            )
        except StoreConflictError:
            with self._lock:
                self._live.pop(session_id, None)
            raise

    def _session(self, session_id: str) -> _LiveSession:
        """The live session for ``session_id``, re-hydrating from its store.

        Unknown ids raise :class:`~repro.exceptions.ServiceError` 404.
        """
        with self._lock:
            live = self._live.get(session_id)
            if live is not None:
                return live
        found = self._find_store(session_id)
        if found is None:
            raise ServiceError(f"unknown session {session_id!r}", status=404)
        store_name, row = found
        payload = validate_envelope(
            row.document,
            SESSION_DIR_FORMAT,
            SESSION_DIR_VERSION,
            SessionError,
            source=f"stored session {session_id!r}",
        )
        recipe = payload["recipe"]
        train, test, model, strategy, _settings = build_session_components(recipe)
        feed = SessionEventFeed()
        engine = SessionEngine.restore(
            payload["session"], model, strategy, train, test, observers=[feed]
        )
        live = _LiveSession(recipe, engine, feed, store_name, row.version)
        with self._lock:
            # Another thread may have hydrated concurrently; keep the first.
            return self._live.setdefault(session_id, live)

    def _generated_id(self) -> str:
        """The next free ``session-N`` id across every store."""
        while True:
            with self._lock:
                self._counter += 1
                candidate = f"session-{self._counter}"
            if candidate not in self._live and self._find_store(candidate) is None:
                return candidate

    # -- operations --------------------------------------------------------

    def create(self, body: dict) -> dict:
        """Create a session from ``{"recipe": ..., "id"?, "store"?}``.

        Builds the components, runs the engine to its first proposal's
        doorstep (state ``PROPOSE``), and persists the initial document
        with a conflict-checked create — an existing id anywhere is
        refused with 409.
        """
        if not isinstance(body, dict):
            raise ServiceError("create body must be a JSON object", status=400)
        recipe = _normalized_recipe(body.get("recipe"))
        store_name = body.get("store", self.default_store)
        store = self._store_named(store_name)
        session_id = body.get("id")
        if session_id is None:
            session_id = self._generated_id()
        elif self._find_store(session_id) is not None:
            raise StoreConflictError(f"session {session_id!r} already exists")
        train, test, model, strategy, settings = build_session_components(recipe)
        feed = SessionEventFeed()
        engine = SessionEngine(
            model,
            strategy,
            train,
            test,
            batch_size=settings["batch_size"],
            rounds=settings["rounds"],
            initial_size=settings["initial_size"],
            seed_or_rng=settings["seed"],
            training_mode=settings["training_mode"],
            track_flips=settings.get("track_flips", False),
            observers=[feed],
        )
        live = _LiveSession(recipe, engine, feed, store_name, version=None)
        live.version = store.create(session_id, self._document(live))
        with self._lock:
            self._live[session_id] = live
        return {
            "id": session_id,
            "store": store_name,
            "state": engine.state.value,
            "round": engine.round_index,
            "n_train": len(train),
            "n_test": len(test),
            "recipe": recipe,
        }

    def _proposal_payload(self, session_id: str, live: _LiveSession) -> dict:
        """The pending batch rendered for an annotator (decoded text)."""
        engine = live.engine
        pending = engine.pending
        train = engine.train_dataset
        samples = [
            {
                "index": index,
                "text": " ".join(train.vocab.decode(train.sentences[index])),
            }
            for index in pending.tolist()
        ]
        return {
            "id": session_id,
            "state": engine.state.value,
            "finished": False,
            "round": engine.round_index,
            "indices": pending.tolist(),
            "samples": samples,
            "labels_template": {str(index): None for index in pending.tolist()},
            "recipe": live.recipe,
        }

    def _result_payload(self, session_id: str, live: _LiveSession) -> dict:
        """The finished session's audit trail as a JSON document."""
        # Imported lazily: experiments.checkpoint persists through
        # service.store, so a module-level import here would be circular.
        from ..experiments.checkpoint import result_to_dict

        result = live.engine.result()
        curve = result.curve()
        return {
            "id": session_id,
            "state": live.engine.state.value,
            "finished": True,
            "round": live.engine.round_index,
            "result": result_to_dict(result),
            "curve": [
                [int(count), float(value)]
                for count, value in zip(curve.counts, curve.values)
            ],
            "recipe": live.recipe,
        }

    def propose(self, session_id: str) -> dict:
        """Advance to the next batch awaiting labels (or the end).

        Persists the advanced state, then returns either the proposal
        (indices, decoded samples, labels template) or — once the
        session is finished — the full result payload.
        """
        live = self._session(session_id)
        with live.lock:
            pending = live.engine.propose()
            self._save(session_id, live)
            if pending is None:
                return self._result_payload(session_id, live)
            return self._proposal_payload(session_id, live)

    def ingest(self, session_id: str, body: dict) -> dict:
        """Label the pending batch and commit it.

        ``body`` is ``{"oracle": true}`` (answer from the dataset's own
        labels, the smoke-test mode) or ``{"indices": [...], "labels":
        [...]}``.  The commit happens before the reply, so the persisted
        document always lands on a round boundary; the (long) retrain
        runs on the next :meth:`propose`.
        """
        if not isinstance(body, dict):
            raise ServiceError("ingest body must be a JSON object", status=400)
        live = self._session(session_id)
        with live.lock:
            engine = live.engine
            if engine.state is not SessionState.AWAIT_LABELS:
                raise SessionError(
                    f"session is not awaiting labels (state={engine.state.value!r}); "
                    "propose first"
                )
            if body.get("oracle"):
                engine.ingest_labels(engine.pending)
            else:
                indices = body.get("indices")
                if not isinstance(indices, list):
                    raise IngestError(
                        "ingest body needs 'indices' (a list) or 'oracle': true"
                    )
                engine.ingest_labels(indices, body.get("labels"))
            engine.step()  # commit the batch before the (long) retrain
            self._save(session_id, live)
            return {
                "id": session_id,
                "state": engine.state.value,
                "round": engine.round_index,
                "committed": True,
            }

    def status(self, session_id: str) -> dict:
        """The session's stored document plus live feed position."""
        live = self._session(session_id)
        with live.lock:
            snapshot = live.engine.snapshot()
            return {
                "id": session_id,
                "store": live.store_name,
                "state": snapshot["state"],
                "round": snapshot["round_index"],
                "recipe": live.recipe,
                "session": snapshot,
                "metrics": session_metrics(live.engine, live.recipe),
                "last_seq": live.feed.last_seq,
            }

    def result(self, session_id: str) -> dict:
        """The finished session's audit trail (409 until finished)."""
        live = self._session(session_id)
        with live.lock:
            return self._result_payload(session_id, live)

    def events(self, session_id: str, after: int = 0) -> dict:
        """Lifecycle events with ``seq`` greater than ``after``."""
        live = self._session(session_id)
        return {
            "id": session_id,
            "events": live.feed.since(after),
            "last_seq": live.feed.last_seq,
        }

    def delete(self, session_id: str) -> dict:
        """Remove the session from memory and its store (404 if unknown)."""
        found = self._find_store(session_id)
        if found is None and session_id not in self._live:
            raise ServiceError(f"unknown session {session_id!r}", status=404)
        with self._lock:
            self._live.pop(session_id, None)
        if found is not None:
            self.stores[found[0]].delete(session_id)
        return {"id": session_id, "deleted": True}

    def list_sessions(self) -> dict:
        """Every stored session id, tagged with its store."""
        sessions = []
        for name in sorted(self.stores):
            for session_id in self.stores[name].list_ids():
                sessions.append({"id": session_id, "store": name})
        return {"sessions": sessions}

    def health(self) -> dict:
        """Liveness payload: store names and hosted-session count."""
        return {
            "status": "ok",
            "stores": sorted(self.stores),
            "default_store": self.default_store,
            "live_sessions": len(self._live),
        }


#: Exception class -> HTTP status, checked in order (subclasses first).
_ERROR_STATUS = (
    (StoreConflictError, 409),
    (IngestError, 400),
    (SessionError, 409),
    (SpecError, 400),
    (ConfigurationError, 400),
    (StoreError, 500),
)


def _error_response(error: ReproError) -> "tuple[int, dict]":
    """Map a domain error onto ``(status, payload)``.

    The payload carries ``error_type`` (the exception class name) so the
    client can re-raise the *same* domain exception the in-process path
    would have raised — transport must never change what callers catch.
    """
    if isinstance(error, ServiceError):
        status = error.status
    else:
        status = next(
            (code for cls, code in _ERROR_STATUS if isinstance(error, cls)), 400
        )
    return status, {"error": str(error), "error_type": type(error).__name__}


def dispatch(
    service: SessionService,
    method: str,
    path: str,
    query: "dict | None" = None,
    body: "dict | None" = None,
) -> "tuple[int, dict]":
    """Route one request onto ``service``; returns ``(status, payload)``.

    The single routing table shared by the HTTP server and the
    in-process transport::

        GET    /healthz                    liveness
        GET    /sessions                   list sessions
        POST   /sessions                   create (201)
        GET    /sessions/{id}              status
        DELETE /sessions/{id}              delete
        POST   /sessions/{id}/propose      advance to the next proposal
        POST   /sessions/{id}/ingest       label + commit the pending batch
        GET    /sessions/{id}/result       finished audit trail
        GET    /sessions/{id}/events       feed entries with seq > ``after``

    Domain errors become ``(status, {"error", "error_type"})`` — see
    :func:`_error_response`; unknown paths 404, wrong methods 405.
    """
    query = query or {}
    parts = [part for part in path.split("/") if part]
    try:
        if parts == ["healthz"]:
            if method != "GET":
                raise ServiceError(f"{method} not allowed on /healthz", status=405)
            return 200, service.health()
        if not parts or parts[0] != "sessions" or len(parts) > 3:
            raise ServiceError(f"no such endpoint: {path}", status=404)
        if len(parts) == 1:
            if method == "GET":
                return 200, service.list_sessions()
            if method == "POST":
                return 201, service.create(body or {})
            raise ServiceError(f"{method} not allowed on /sessions", status=405)
        session_id = parts[1]
        if len(parts) == 2:
            if method == "GET":
                return 200, service.status(session_id)
            if method == "DELETE":
                return 200, service.delete(session_id)
            raise ServiceError(
                f"{method} not allowed on /sessions/{session_id}", status=405
            )
        action = parts[2]
        handlers = {
            ("POST", "propose"): partial(service.propose, session_id),
            ("POST", "ingest"): partial(service.ingest, session_id, body or {}),
            ("GET", "result"): partial(service.result, session_id),
            ("GET", "events"): partial(
                service.events, session_id, after=int(query.get("after", 0))
            ),
        }
        handler = handlers.get((method, action))
        if handler is None:
            if any(name == action for _method, name in handlers):
                raise ServiceError(
                    f"{method} not allowed on /sessions/{session_id}/{action}",
                    status=405,
                )
            raise ServiceError(f"no such endpoint: {path}", status=404)
        return 200, handler()
    except ReproError as error:
        return _error_response(error)

"""Pluggable persistence for active-learning sessions.

A :class:`SessionStore` keeps versioned JSON documents addressed by
session id.  Every document is the same envelope the ``repro session``
directory workflow has always written (format
``repro.session_dir``: the session recipe plus the engine's pure-JSON
snapshot), so a session is portable across backends and inspectable with
nothing but a JSON tool.

The contract is deliberately small:

* :meth:`~SessionStore.load` returns the document **and an opaque
  version token**;
* :meth:`~SessionStore.save` optionally takes the token back and
  performs a compare-and-swap: if the stored version moved in the
  meantime (another worker committed first), the write is refused with
  :class:`~repro.exceptions.StoreConflictError` — the AL service maps
  that to HTTP 409 and the loser re-reads instead of silently clobbering
  the winner (the classic lost update);
* :meth:`~SessionStore.create` refuses an existing id with the same
  conflict error.

Three backends:

* :class:`JsonSessionStore` — one ``<id>.json`` file per session,
  written through :func:`repro.ioutil.atomic_write_text` (crash-safe:
  readers see the old or the new document, never a torn one).  Versions
  are content hashes; CAS is serialized per process and best-effort
  across processes — use sqlite when multiple *processes* race on one
  session.  This backend also carries the checkpoint store's round-level
  ``session_*.json`` snapshots and the session CLI's ``session.json``,
  byte-identical to their pre-service layout.
* :class:`SqliteSessionStore` — a single ``sqlite3`` database with
  integer versions and transactional CAS (``BEGIN IMMEDIATE``), safe
  across processes and machines sharing the file.  A crash mid-write
  rolls back on the next open: the previous document and version
  survive intact.
* :class:`MemorySessionStore` — the in-memory reference implementation,
  for tests and ephemeral services.
"""

from __future__ import annotations

import hashlib
import json
import re
import sqlite3
import threading
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path

from ..exceptions import StoreConflictError, StoreError
from ..ioutil import atomic_write_text, check_fingerprint, validate_envelope

__all__ = [
    "JsonSessionStore",
    "MemorySessionStore",
    "SessionStore",
    "SqliteSessionStore",
    "StoredSession",
    "check_fingerprint",
    "validate_envelope",
]

#: Legal session ids: filesystem- and URL-safe, bounded length.
_ID_PATTERN = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]{0,99}")


def checked_session_id(session_id: str) -> str:
    """Validate a session id against the store-safe alphabet.

    Ids become file names (JSON backend), primary keys (sqlite), and URL
    path segments (the HTTP API), so they are restricted to
    ``[A-Za-z0-9._-]``, must start alphanumeric, and are capped at 100
    characters.  Raises :class:`~repro.exceptions.StoreError` otherwise.
    """
    if not isinstance(session_id, str) or not _ID_PATTERN.fullmatch(session_id):
        raise StoreError(
            f"illegal session id {session_id!r}: ids must match "
            f"[A-Za-z0-9][A-Za-z0-9._-]* and be at most 100 characters"
        )
    return session_id


@dataclass(frozen=True)
class StoredSession:
    """One stored session document plus its opaque version token.

    ``version`` is whatever the backend uses to detect concurrent
    writes (an integer for sqlite/memory, a content hash for JSON
    files); callers hand it back to :meth:`SessionStore.save` unchanged
    and never interpret it.
    """

    document: dict
    version: object


class SessionStore:
    """Abstract contract every session-store backend implements.

    See the module docstring for the concurrency semantics.  Methods
    raise :class:`~repro.exceptions.StoreError` for corrupt documents or
    backend failures and
    :class:`~repro.exceptions.StoreConflictError` for optimistic-
    concurrency losses.
    """

    def load(self, session_id: str) -> "StoredSession | None":
        """The stored document and version, or ``None`` if absent."""
        raise NotImplementedError

    def save(self, session_id: str, document: dict, expected_version=None):
        """Write ``document``; returns the new version token.

        With ``expected_version=None`` the write is unconditional (the
        single-writer fast path).  Otherwise it is a compare-and-swap:
        the write succeeds only if the stored version still equals
        ``expected_version``, and raises
        :class:`~repro.exceptions.StoreConflictError` if another writer
        committed in between (or the document vanished).
        """
        raise NotImplementedError

    def delete(self, session_id: str) -> None:
        """Remove the session; idempotent (absent ids are a no-op)."""
        raise NotImplementedError

    def list_ids(self) -> list[str]:
        """All stored session ids, sorted."""
        raise NotImplementedError

    def create(self, session_id: str, document: dict):
        """Store a brand-new session; returns its first version token.

        Raises :class:`~repro.exceptions.StoreConflictError` if the id
        already exists — creating must never overwrite a live session.
        Backends with stronger primitives (sqlite ``INSERT``) override
        this with a fully atomic variant.
        """
        if self.load(session_id) is not None:
            raise StoreConflictError(f"session {session_id!r} already exists")
        return self.save(session_id, document)


class MemorySessionStore(SessionStore):
    """Dict-backed reference store (integer versions, process-local).

    Documents round-trip through ``json.dumps`` so the store only
    accepts JSON-compatible payloads and hands back isolated copies —
    exactly the guarantees the durable backends give.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._rows: dict[str, tuple[str, int]] = {}

    def load(self, session_id: str) -> "StoredSession | None":
        """The stored document and version, or ``None`` if absent."""
        checked_session_id(session_id)
        with self._lock:
            row = self._rows.get(session_id)
        if row is None:
            return None
        text, version = row
        return StoredSession(document=json.loads(text), version=version)

    def save(self, session_id: str, document: dict, expected_version=None) -> int:
        """Write ``document``; CAS when ``expected_version`` is given."""
        checked_session_id(session_id)
        text = json.dumps(document)
        with self._lock:
            current = self._rows.get(session_id)
            version = 0 if current is None else current[1]
            if expected_version is not None and version != expected_version:
                raise StoreConflictError(
                    f"concurrent update of session {session_id!r}: expected "
                    f"version {expected_version!r}, found {version!r}"
                )
            self._rows[session_id] = (text, version + 1)
            return version + 1

    def delete(self, session_id: str) -> None:
        """Remove the session; idempotent."""
        checked_session_id(session_id)
        with self._lock:
            self._rows.pop(session_id, None)

    def list_ids(self) -> list[str]:
        """All stored session ids, sorted."""
        with self._lock:
            return sorted(self._rows)


class JsonSessionStore(SessionStore):
    """One atomic-written ``<id>.json`` document per session.

    The plain-files backend: inspectable, diffable, and byte-identical
    to the documents the pre-service code wrote (``json.dumps`` with
    default separators through the same atomic-write helper).  Version
    tokens are SHA-256 hashes of the file bytes; compare-and-swap
    re-reads and compares under a process-level lock, so it is exact
    within one process and best-effort across processes (the window
    between compare and rename).  Cross-process contention belongs on
    :class:`SqliteSessionStore`.

    ``on_event`` is the deterministic crash-site hook used by the
    fault-injection tests: it is called with ``"serialized"`` before the
    atomic write and ``"written"`` after it, mirroring the distributed
    worker's ``on_event`` seam.
    """

    def __init__(
        self,
        directory: "str | Path",
        on_event: "Callable[[str], None] | None" = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._on_event = on_event

    def path(self, session_id: str) -> Path:
        """The document file backing one session id."""
        return self.directory / f"{checked_session_id(session_id)}.json"

    def _read(self, path: Path) -> "tuple[dict, str] | None":
        """``(document, content-hash)`` of ``path``, or ``None`` if absent."""
        try:
            text = path.read_text()
        except FileNotFoundError:
            return None
        except OSError as error:
            raise StoreError(f"cannot read session document {path}: {error}") from error
        try:
            document = json.loads(text)
        except json.JSONDecodeError as error:
            raise StoreError(
                f"corrupt session document {path}: {error}"
            ) from error
        return document, hashlib.sha256(text.encode("utf-8")).hexdigest()

    def load(self, session_id: str) -> "StoredSession | None":
        """The stored document and version, or ``None`` if absent."""
        row = self._read(self.path(session_id))
        if row is None:
            return None
        document, digest = row
        return StoredSession(document=document, version=digest)

    def save(self, session_id: str, document: dict, expected_version=None) -> str:
        """Atomically write ``document``; CAS on the content hash."""
        path = self.path(session_id)
        text = json.dumps(document)
        with self._lock:
            if expected_version is not None:
                row = self._read(path)
                current = None if row is None else row[1]
                if current != expected_version:
                    raise StoreConflictError(
                        f"concurrent update of session {session_id!r}: expected "
                        f"version {expected_version!r}, found {current!r}"
                    )
            if self._on_event is not None:
                self._on_event("serialized")
            atomic_write_text(path, text)
            if self._on_event is not None:
                self._on_event("written")
            return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def delete(self, session_id: str) -> None:
        """Remove the session's document; idempotent."""
        self.path(session_id).unlink(missing_ok=True)

    def list_ids(self) -> list[str]:
        """Stems of every ``*.json`` document in the directory, sorted."""
        return sorted(path.stem for path in self.directory.glob("*.json"))


class SqliteSessionStore(SessionStore):
    """Sessions in one sqlite3 database with transactional versioned CAS.

    Every write runs inside ``BEGIN IMMEDIATE`` so the version check and
    the update commit atomically; concurrent writers on the same session
    — other threads, other processes, other hosts sharing the file —
    serialize on the database lock and the loser's compare-and-swap
    fails with :class:`~repro.exceptions.StoreConflictError` instead of
    overwriting.  Versions are monotonically increasing integers.

    A crash mid-write (process killed between the update and the
    commit) is rolled back by sqlite's journal on the next connection:
    the previous document and version survive bit-for-bit — the
    fault-injection tests kill a writer at exactly that point.

    ``on_event`` is the deterministic crash-site hook those tests use:
    called with ``"begun"`` after the transaction opens, ``"written"``
    after the row is updated but *before* commit, and ``"committed"``
    after.
    """

    def __init__(
        self,
        path: "str | Path",
        timeout: float = 30.0,
        on_event: "Callable[[str], None] | None" = None,
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.timeout = float(timeout)
        self._on_event = on_event
        with self._connect() as connection:
            connection.execute(
                "CREATE TABLE IF NOT EXISTS sessions ("
                " id TEXT PRIMARY KEY,"
                " version INTEGER NOT NULL,"
                " document TEXT NOT NULL)"
            )

    def _connect(self) -> sqlite3.Connection:
        """A fresh autocommit-off connection (one per operation)."""
        connection = sqlite3.connect(self.path, timeout=self.timeout)
        connection.isolation_level = None  # explicit BEGIN/COMMIT below
        return connection

    def _emit(self, event: str) -> None:
        """Report one write-lifecycle step to the crash-site hook."""
        if self._on_event is not None:
            self._on_event(event)

    def load(self, session_id: str) -> "StoredSession | None":
        """The stored document and version, or ``None`` if absent."""
        checked_session_id(session_id)
        connection = self._connect()
        try:
            row = connection.execute(
                "SELECT document, version FROM sessions WHERE id = ?",
                (session_id,),
            ).fetchone()
        finally:
            connection.close()
        if row is None:
            return None
        try:
            document = json.loads(row[0])
        except json.JSONDecodeError as error:
            raise StoreError(
                f"corrupt session document {session_id!r} in {self.path}: {error}"
            ) from error
        return StoredSession(document=document, version=int(row[1]))

    def save(self, session_id: str, document: dict, expected_version=None) -> int:
        """Write ``document`` transactionally; CAS on the integer version."""
        checked_session_id(session_id)
        text = json.dumps(document)
        connection = self._connect()
        try:
            connection.execute("BEGIN IMMEDIATE")
            self._emit("begun")
            row = connection.execute(
                "SELECT version FROM sessions WHERE id = ?", (session_id,)
            ).fetchone()
            current = None if row is None else int(row[0])
            if expected_version is not None and current != expected_version:
                raise StoreConflictError(
                    f"concurrent update of session {session_id!r}: expected "
                    f"version {expected_version!r}, found {current!r}"
                )
            version = 1 if current is None else current + 1
            if current is None:
                connection.execute(
                    "INSERT INTO sessions (id, version, document) VALUES (?, ?, ?)",
                    (session_id, version, text),
                )
            else:
                connection.execute(
                    "UPDATE sessions SET version = ?, document = ? WHERE id = ?",
                    (version, text, session_id),
                )
            self._emit("written")
            connection.execute("COMMIT")
            self._emit("committed")
            return version
        except sqlite3.Error as error:
            raise StoreError(f"sqlite session store {self.path}: {error}") from error
        finally:
            connection.close()

    def create(self, session_id: str, document: dict) -> int:
        """Atomically insert a brand-new session (conflict if it exists)."""
        checked_session_id(session_id)
        text = json.dumps(document)
        connection = self._connect()
        try:
            connection.execute("BEGIN IMMEDIATE")
            try:
                connection.execute(
                    "INSERT INTO sessions (id, version, document) VALUES (?, 1, ?)",
                    (session_id, text),
                )
            except sqlite3.IntegrityError:
                raise StoreConflictError(
                    f"session {session_id!r} already exists"
                ) from None
            connection.execute("COMMIT")
            return 1
        except (StoreConflictError, StoreError):
            raise
        except sqlite3.Error as error:
            raise StoreError(f"sqlite session store {self.path}: {error}") from error
        finally:
            connection.close()

    def delete(self, session_id: str) -> None:
        """Remove the session's row; idempotent."""
        checked_session_id(session_id)
        connection = self._connect()
        try:
            connection.execute("BEGIN IMMEDIATE")
            connection.execute("DELETE FROM sessions WHERE id = ?", (session_id,))
            connection.execute("COMMIT")
        except sqlite3.Error as error:
            raise StoreError(f"sqlite session store {self.path}: {error}") from error
        finally:
            connection.close()

    def list_ids(self) -> list[str]:
        """All stored session ids, sorted."""
        connection = self._connect()
        try:
            rows = connection.execute("SELECT id FROM sessions ORDER BY id").fetchall()
        finally:
            connection.close()
        return [row[0] for row in rows]

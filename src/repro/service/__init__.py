"""AL-as-a-service: a multi-tenant session server over pluggable stores.

This package turns the re-entrant
:class:`~repro.core.session.SessionEngine` into a hosted service.  Three
layers, each usable on its own:

* :mod:`repro.service.store` — the :class:`SessionStore` persistence
  contract (versioned documents, optimistic compare-and-swap writes)
  with JSON-directory, sqlite3, and in-memory backends.  The checkpoint
  store's round-level session snapshots and the ``repro session``
  directory workflow persist through the same API.
* :mod:`repro.service.app` — :class:`SessionService`, the
  transport-independent application: create-from-recipe or
  create-from-:class:`~repro.specs.ExperimentSpec`, propose / ingest /
  status / events / result operations addressed by session id, with
  per-session locking and store-level CAS for cross-process safety.
* :mod:`repro.service.server` / :mod:`repro.service.client` — a
  stdlib-only ``ThreadingHTTPServer`` front end and a
  :class:`SessionClient` that speaks either HTTP or an in-process
  transport.  The file-based ``repro session`` CLI is a thin client of
  the in-process transport, byte-identical to its pre-service behaviour.

Everything here is standard library only (``http.server``, ``sqlite3``,
``urllib``): hosting sessions adds no dependencies.
"""

from .app import RECIPE_DEFAULTS, SessionService, build_session_components, dispatch
from .client import HttpTransport, InProcessTransport, SessionClient
from .events import SessionEventFeed
from .server import SessionHTTPServer, make_server
from .store import (
    JsonSessionStore,
    MemorySessionStore,
    SessionStore,
    SqliteSessionStore,
    StoredSession,
)

__all__ = [
    "HttpTransport",
    "InProcessTransport",
    "JsonSessionStore",
    "MemorySessionStore",
    "RECIPE_DEFAULTS",
    "SessionClient",
    "SessionEventFeed",
    "SessionHTTPServer",
    "SessionService",
    "SessionStore",
    "SqliteSessionStore",
    "StoredSession",
    "build_session_components",
    "dispatch",
    "make_server",
]

"""Task metrics: classification accuracy and entity-level span F1.

The paper reports accuracy for text classification (following Kim 2014)
and average F1 for NER (following Ma & Hovy 2016, i.e. exact-span
precision/recall over decoded entities).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.datasets import SequenceDataset, TextDataset
from ..data.tagging import extract_spans
from ..exceptions import ConfigurationError
from ..models.base import Classifier, SequenceLabeler


def accuracy_score(gold: np.ndarray, predicted: np.ndarray) -> float:
    """Fraction of matching labels."""
    gold = np.asarray(gold)
    predicted = np.asarray(predicted)
    if gold.shape != predicted.shape:
        raise ConfigurationError(
            f"shape mismatch: gold {gold.shape} vs predicted {predicted.shape}"
        )
    if gold.size == 0:
        return 0.0
    return float((gold == predicted).mean())


@dataclass(frozen=True)
class SpanF1:
    """Entity-level precision / recall / F1 with raw counts."""

    precision: float
    recall: float
    f1: float
    true_positives: int
    predicted_spans: int
    gold_spans: int


def span_f1(
    gold_tag_sequences: "list[list[str]]",
    predicted_tag_sequences: "list[list[str]]",
) -> SpanF1:
    """Exact-match entity F1 over string tag sequences (BIO or BIOES)."""
    if len(gold_tag_sequences) != len(predicted_tag_sequences):
        raise ConfigurationError(
            f"{len(gold_tag_sequences)} gold vs "
            f"{len(predicted_tag_sequences)} predicted sentences"
        )
    true_positives = 0
    n_predicted = 0
    n_gold = 0
    for gold_tags, predicted_tags in zip(gold_tag_sequences, predicted_tag_sequences):
        gold_set = extract_spans(gold_tags)
        predicted_set = extract_spans(predicted_tags)
        true_positives += len(gold_set & predicted_set)
        n_predicted += len(predicted_set)
        n_gold += len(gold_set)
    precision = true_positives / n_predicted if n_predicted else 0.0
    recall = true_positives / n_gold if n_gold else 0.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
    return SpanF1(
        precision=precision,
        recall=recall,
        f1=f1,
        true_positives=true_positives,
        predicted_spans=n_predicted,
        gold_spans=n_gold,
    )


def sequence_model_f1(
    model: SequenceLabeler,
    dataset: SequenceDataset,
    *,
    cache=None,
) -> float:
    """Span F1 of a labeler's Viterbi predictions on ``dataset``.

    ``cache`` is an optional
    :class:`~repro.core.prediction_cache.PredictionCache`; when given,
    the Viterbi decode is shared with any other pass over the same
    fitted model and dataset this round.
    """
    predicted = (
        cache.predict_tags(model, dataset)
        if cache is not None
        else model.predict_tags(dataset)
    )
    gold_strings = [dataset.tags_as_strings(i) for i in range(len(dataset))]
    predicted_strings = [
        [dataset.tag_names[t] for t in tags] for tags in predicted
    ]
    return span_f1(gold_strings, predicted_strings).f1


def evaluate_model(
    model: "Classifier | SequenceLabeler",
    dataset: "TextDataset | SequenceDataset",
    *,
    cache=None,
) -> float:
    """The paper's default metric for the model family.

    Accuracy for classifiers, entity span F1 for sequence labelers.
    ``cache`` is an optional per-round
    :class:`~repro.core.prediction_cache.PredictionCache` that shares
    the forward pass with other consumers of the same model/dataset.
    """
    if isinstance(model, Classifier):
        if not isinstance(dataset, TextDataset):
            raise ConfigurationError("classifier evaluation needs a TextDataset")
        if cache is not None and len(dataset):
            predicted = cache.predict(model, dataset)
            return float((predicted == dataset.labels).mean())
        return model.accuracy(dataset)
    if isinstance(model, SequenceLabeler):
        if not isinstance(dataset, SequenceDataset):
            raise ConfigurationError(
                "sequence-labeler evaluation needs a SequenceDataset"
            )
        return sequence_model_f1(model, dataset, cache=cache)
    raise ConfigurationError(f"cannot evaluate a {type(model).__name__}")

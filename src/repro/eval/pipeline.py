"""The pluggable metric pipeline behind sweep reports and service status.

Historically the experiment stack had exactly one summary path: the
task metric (accuracy / span F1) evaluated per round into a
:class:`~repro.eval.curves.LearningCurve`.  Sweeps need *actionable*
metrics (Dataiku's "Rebuilding Trust in Active Learning"): how much
annotation a strategy saves against the random baseline, how often the
model contradicts itself between rounds, and what the curve looks like
against annotation *cost* rather than sample count.  This module
extracts that summary path into a :class:`MetricPipeline` of registered
:class:`Metric` objects.

The pipeline consumes a :class:`MetricContext` — per-strategy mean
curves and per-repeat run results (duck-typed; anything with ``curve()``,
``history``, and ``selection_order`` works, so the eval layer never
imports the experiments layer) — and produces an ordered
``{metric_label: {strategy: value}}`` matrix.  Inapplicable cells are
NaN (e.g. contradiction rate without label tracking, speed-up without a
baseline), which the reporting layer renders as ``-``.

Reference semantics, pinned by oracle tests:

* **speed-up factor** — ``samples_to_target(baseline) /
  samples_to_target(strategy)`` at a target metric (explicit, or a
  fraction of the baseline's final value).  >1 means the strategy needs
  fewer labels than random; NaN when either side never reaches the
  target.
* **contradiction rate** — over all consecutive pairs of recorded
  label rounds, the fraction of co-observed samples whose predicted
  label flipped.  Computed from the
  :meth:`~repro.core.history.HistoryStore.label_rounds` records written
  under ``track_flips``.
* **cost-normalised AUC** — the learning curve re-parameterised on
  cumulative annotation cost (per-sample costs from the scenario's cost
  model; unit costs when absent).  The initial random set's cost is
  estimated as ``mean(costs) * initial_size`` — its exact indices are
  not part of the audit trail, and the expectation is exact for the
  uniform sampler that drew it.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from ..exceptions import ConfigurationError
from .curves import LearningCurve, area_under_curve, samples_to_target


# -- reference computations (oracle-tested pure functions) ------------------


def contradiction_rate(history) -> float:
    """Fraction of consecutive-round predictions that flipped.

    ``history`` is a :class:`~repro.core.history.HistoryStore` (or any
    object with ``label_rounds()``).  For every consecutive pair of
    label rounds, samples recorded in both are compared; the rate is
    total flips over total comparisons.  NaN when fewer than two label
    rounds exist (nothing to compare — e.g. ``track_flips`` was off).
    """
    rounds = list(history.label_rounds())
    flips = 0
    comparisons = 0
    for (_, prev_idx, prev_labels), (_, next_idx, next_labels) in zip(
        rounds, rounds[1:]
    ):
        prev_map = np.full(int(max(prev_idx.max(), next_idx.max())) + 1, -1, np.int64) \
            if prev_idx.size and next_idx.size else None
        if prev_map is None:
            continue
        prev_map[prev_idx] = prev_labels
        shared = prev_map[next_idx] != -1
        comparisons += int(np.count_nonzero(shared))
        flips += int(np.count_nonzero(prev_map[next_idx[shared]] != next_labels[shared]))
    if comparisons == 0:
        return float("nan")
    return flips / comparisons


def cumulative_costs(
    counts: np.ndarray,
    selection_order,
    costs: "np.ndarray | None",
) -> np.ndarray:
    """Cumulative annotation cost at each curve point.

    ``counts`` is the curve's labeled-count grid; ``selection_order``
    the per-round selected index arrays (batch ``i`` moves the labeled
    count from ``counts[i]`` to ``counts[i+1]``).  With ``costs=None``
    every sample costs 1.0 and the result equals ``counts`` exactly.
    The initial set (whose indices are not recorded) is charged
    ``mean(costs) * counts[0]``.
    """
    counts = np.asarray(counts, dtype=np.int64)
    if costs is None:
        return counts.astype(np.float64)
    costs = np.asarray(costs, dtype=np.float64)
    cumulative = np.empty(len(counts), dtype=np.float64)
    cumulative[0] = float(costs.mean()) * float(counts[0])
    for position, selected in enumerate(selection_order[: len(counts) - 1]):
        batch = np.asarray(selected, dtype=np.int64)
        cumulative[position + 1] = cumulative[position] + float(costs[batch].sum())
    return cumulative


def cost_normalized_auc(
    curve: LearningCurve,
    selection_order,
    costs: "np.ndarray | None",
) -> float:
    """AUC of the curve re-parameterised on cumulative annotation cost.

    Normalised by the cost span, so the value is a mean metric level
    weighted by where the annotation budget actually went.  With unit
    costs this equals ``area_under_curve(curve)``.
    """
    if len(curve) == 1:
        return float(curve.values[0])
    spent = cumulative_costs(curve.counts, selection_order, costs)
    span = float(spent[-1] - spent[0])
    if span <= 0:
        return float(curve.values[-1])
    return float(np.trapezoid(curve.values, spent) / span)


def speedup_factor(
    curve: LearningCurve,
    baseline: LearningCurve,
    target: "float | None" = None,
    fraction: float = 0.9,
) -> float:
    """Annotation speed-up of ``curve`` over ``baseline`` at a target.

    The target metric level is ``target`` when given, otherwise
    ``fraction`` of the baseline's final value.  Returns
    ``samples_to_target(baseline) / samples_to_target(curve)``; NaN when
    either curve never reaches the target.
    """
    level = float(target) if target is not None else fraction * float(
        baseline.values[-1]
    )
    baseline_needs = samples_to_target(baseline, level)
    strategy_needs = samples_to_target(curve, level)
    if baseline_needs is None or strategy_needs is None or strategy_needs == 0:
        return float("nan")
    return baseline_needs / strategy_needs


# -- metric objects ---------------------------------------------------------


class Metric:
    """One column of the metric matrix: a scalar per strategy."""

    kind: str = ""

    def __init__(self, label: "str | None" = None) -> None:
        self.label = label or self.kind

    def params(self) -> dict:
        """Return the constructor parameters for spec serialization."""
        return {} if self.label == self.kind else {"label": self.label}

    def compute(self, name: str, context: "MetricContext") -> float:
        """Compute this metric for strategy ``name`` from ``context``."""
        raise NotImplementedError

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.params().items())
        return f"{type(self).__name__}({inner})"


class FinalMetric(Metric):
    """The task metric (accuracy / span F1) at the final budget."""

    kind = "final"

    def compute(self, name: str, context: "MetricContext") -> float:
        """Final-round value of the mean learning curve for ``name``."""
        return float(context.curves[name].values[-1])


class AUCMetric(Metric):
    """Normalised area under the labeled-count learning curve."""

    kind = "auc"

    def compute(self, name: str, context: "MetricContext") -> float:
        """Area under the mean learning curve for ``name``."""
        return area_under_curve(context.curves[name])


class SpeedupMetric(Metric):
    """Speed-up factor vs. the baseline strategy (default ``random``)."""

    kind = "speedup"

    def __init__(
        self,
        target: "float | None" = None,
        fraction: float = 0.9,
        baseline: str = "random",
        label: "str | None" = None,
    ) -> None:
        super().__init__(label)
        fraction = float(fraction)
        if target is None and not 0.0 < fraction <= 1.0:
            raise ConfigurationError(
                f"speedup fraction must be in (0, 1], got {fraction}"
            )
        self.target = None if target is None else float(target)
        self.fraction = fraction
        self.baseline = str(baseline)

    def params(self) -> dict:
        """Return the constructor parameters for spec serialization."""
        params = super().params()
        if self.target is not None:
            params["target"] = self.target
        params["fraction"] = self.fraction
        params["baseline"] = self.baseline
        return params

    def compute(self, name: str, context: "MetricContext") -> float:
        """Speed-up of ``name`` over the baseline at the target quality."""
        baseline = context.curves.get(self.baseline)
        if baseline is None:
            return float("nan")
        return speedup_factor(
            context.curves[name], baseline, target=self.target, fraction=self.fraction
        )


class ContradictionMetric(Metric):
    """Mean contradiction rate across the strategy's repeats."""

    kind = "contradiction"

    def compute(self, name: str, context: "MetricContext") -> float:
        """Mean label contradiction rate over the runs recorded for ``name``."""
        rates = [
            contradiction_rate(run.history) for run in context.runs.get(name, [])
        ]
        rates = [rate for rate in rates if not np.isnan(rate)]
        if not rates:
            return float("nan")
        return float(np.mean(rates))


class CostAUCMetric(Metric):
    """Mean cost-normalised AUC across the strategy's repeats."""

    kind = "cost_auc"

    def compute(self, name: str, context: "MetricContext") -> float:
        """Mean cost-normalized AUC over the runs recorded for ``name``."""
        runs = context.runs.get(name, [])
        if not runs:
            return float("nan")
        return float(
            np.mean(
                [
                    cost_normalized_auc(
                        run.curve(), run.selection_order, context.costs
                    )
                    for run in runs
                ]
            )
        )


# -- context + pipeline -----------------------------------------------------


class MetricContext:
    """Everything a metric may consume for one experiment's results.

    Parameters
    ----------
    curves:
        Mean learning curve per strategy display name.
    runs:
        Per-repeat run results per strategy (objects with ``curve()``,
        ``history``, and ``selection_order`` — e.g.
        :class:`~repro.core.session.ALResult`).
    costs:
        Per-sample annotation-cost vector over the training pool, or
        ``None`` for unit costs.
    """

    def __init__(
        self,
        curves: "Mapping[str, LearningCurve]",
        runs: "Mapping[str, list] | None" = None,
        costs: "np.ndarray | None" = None,
    ) -> None:
        self.curves = dict(curves)
        self.runs = {} if runs is None else dict(runs)
        self.costs = None if costs is None else np.asarray(costs, dtype=np.float64)

    @classmethod
    def from_strategy_results(cls, results: Mapping, costs=None) -> "MetricContext":
        """Build from a ``run_comparison`` result mapping."""
        return cls(
            curves={name: entry.curve for name, entry in results.items()},
            runs={name: list(entry.runs) for name, entry in results.items()},
            costs=costs,
        )


class MetricPipeline:
    """An ordered list of metrics evaluated over every strategy.

    The pipeline is the pluggable replacement for the hard-coded
    curve-summary path: reports and the service status endpoint feed the
    same :class:`MetricContext` through the same registered metrics, so
    online and offline numbers agree by construction.
    """

    def __init__(self, metrics: "list[Metric]") -> None:
        self.metrics = list(metrics)
        labels = [metric.label for metric in self.metrics]
        duplicates = {label for label in labels if labels.count(label) > 1}
        if duplicates:
            raise ConfigurationError(
                f"duplicate metric labels: {sorted(duplicates)} "
                "(give duplicates an explicit 'label' param)"
            )

    def labels(self) -> list[str]:
        """Return the column labels in metric order."""
        return [metric.label for metric in self.metrics]

    def compute(self, context: MetricContext) -> "dict[str, dict[str, float]]":
        """``{metric_label: {strategy: value}}``, metrics in order."""
        return {
            metric.label: {
                name: float(metric.compute(name, context))
                for name in context.curves
            }
            for metric in self.metrics
        }

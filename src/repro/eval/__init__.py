"""Evaluation metrics, learning-curve utilities, and the metric pipeline."""

from .curves import (
    LearningCurve,
    area_under_curve,
    curve_std,
    mean_curve,
    samples_to_target,
)
from .metrics import accuracy_score, evaluate_model, span_f1
from .pipeline import (
    AUCMetric,
    ContradictionMetric,
    CostAUCMetric,
    FinalMetric,
    Metric,
    MetricContext,
    MetricPipeline,
    SpeedupMetric,
    contradiction_rate,
    cost_normalized_auc,
    cumulative_costs,
    speedup_factor,
)

__all__ = [
    "AUCMetric",
    "ContradictionMetric",
    "CostAUCMetric",
    "FinalMetric",
    "LearningCurve",
    "Metric",
    "MetricContext",
    "MetricPipeline",
    "SpeedupMetric",
    "accuracy_score",
    "area_under_curve",
    "contradiction_rate",
    "cost_normalized_auc",
    "cumulative_costs",
    "curve_std",
    "evaluate_model",
    "mean_curve",
    "samples_to_target",
    "span_f1",
    "speedup_factor",
]

"""Evaluation metrics and learning-curve utilities."""

from .curves import LearningCurve, area_under_curve, mean_curve, samples_to_target
from .metrics import accuracy_score, evaluate_model, span_f1

__all__ = [
    "LearningCurve",
    "accuracy_score",
    "area_under_curve",
    "evaluate_model",
    "mean_curve",
    "samples_to_target",
    "span_f1",
]

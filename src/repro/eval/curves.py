"""Learning curves and the paper's derived measurements.

The paper compares strategies two ways (Sec. 5.2): the model's metric at
equal labeled-set sizes (Figures 3-4) and the number of annotated samples
required to reach a target metric (Table 5).  Both live here, plus the
area-under-curve summary used as a tiebreak in analyses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError, CurveMismatchError


@dataclass(frozen=True)
class LearningCurve:
    """Metric as a function of labeled-set size.

    Attributes
    ----------
    counts:
        Labeled-sample counts, strictly increasing.
    values:
        Metric value observed at each count.
    label:
        Display name (usually the strategy name).
    """

    counts: np.ndarray
    values: np.ndarray
    label: str = ""

    def __post_init__(self) -> None:
        counts = np.asarray(self.counts, dtype=np.int64)
        values = np.asarray(self.values, dtype=np.float64)
        if counts.shape != values.shape or counts.ndim != 1:
            raise ConfigurationError(
                f"counts {counts.shape} and values {values.shape} must be 1-D "
                "and aligned"
            )
        if len(counts) == 0:
            raise ConfigurationError("learning curve must have at least one point")
        if len(counts) > 1 and not (np.diff(counts) > 0).all():
            raise ConfigurationError("counts must be strictly increasing")
        object.__setattr__(self, "counts", counts)
        object.__setattr__(self, "values", values)

    def __len__(self) -> int:
        return len(self.counts)

    def value_at(self, count: int) -> float:
        """Metric at the largest recorded count <= ``count``.

        Raises
        ------
        ConfigurationError
            If ``count`` precedes the first recorded point.
        """
        eligible = np.flatnonzero(self.counts <= count)
        if eligible.size == 0:
            raise ConfigurationError(
                f"no curve point at or before count {count} "
                f"(first point is {int(self.counts[0])})"
            )
        return float(self.values[eligible[-1]])


def samples_to_target(curve: LearningCurve, target: float) -> "int | None":
    """Labeled count at the *first* crossing of ``target``.

    Curves are not assumed monotone: a curve that reaches the target,
    dips below it, and recovers still reports its first crossing.  NaN
    values (e.g. quarantined sweep cells) never count as a crossing.
    Returns ``None`` when the curve never reaches the target — rendered
    as e.g. "500+" in Table 5 of the paper.
    """
    with np.errstate(invalid="ignore"):
        reached = np.flatnonzero(curve.values >= target)
    if reached.size == 0:
        return None
    return int(curve.counts[reached[0]])


def area_under_curve(curve: LearningCurve, *, normalize: bool = True) -> float:
    """Trapezoidal area under the curve.

    With ``normalize=True`` (the default) the area is divided by the
    count span, yielding a budget-independent mean metric level so
    curves with different label budgets are comparable.  A single-point
    curve returns its value (normalised) or zero area (raw).
    """
    if len(curve) == 1:
        return float(curve.values[0]) if normalize else 0.0
    area = float(np.trapezoid(curve.values, curve.counts))
    if not normalize:
        return area
    span = float(curve.counts[-1] - curve.counts[0])
    return area / span


def _stack_aligned(curves: "list[LearningCurve]", caller: str) -> np.ndarray:
    """Validate that ``curves`` share one count grid; stack their values.

    Shared by :func:`mean_curve` and :func:`curve_std`.

    Raises
    ------
    CurveMismatchError
        Naming the curves whose counts differ from the first curve's.
    """
    if not curves:
        raise ConfigurationError(f"{caller} needs at least one curve")
    reference = curves[0].counts
    mismatched = [
        curve.label or f"curve[{position}]"
        for position, curve in enumerate(curves)
        if not np.array_equal(curve.counts, reference)
    ]
    if mismatched:
        raise CurveMismatchError(
            f"{caller}: counts differ from {curves[0].label or 'curve[0]'!r} "
            f"for {', '.join(repr(name) for name in mismatched)}",
            labels=tuple(mismatched),
        )
    return np.vstack([curve.values for curve in curves])


def mean_curve(curves: "list[LearningCurve]", label: str = "") -> LearningCurve:
    """Pointwise mean of curves sharing the same counts (repeat averaging).

    Raises
    ------
    CurveMismatchError
        If the curves' counts differ; names the mismatched curves.
    """
    stacked = _stack_aligned(curves, "mean_curve")
    return LearningCurve(
        counts=curves[0].counts.copy(),
        values=stacked.mean(axis=0),
        label=label or curves[0].label,
    )


def curve_std(curves: "list[LearningCurve]") -> np.ndarray:
    """Pointwise standard deviation across repeat curves.

    Raises
    ------
    CurveMismatchError
        If the curves' counts differ; names the mismatched curves.
    """
    return _stack_aligned(curves, "curve_std").std(axis=0)

"""Every on-disk document format marker and schema version, in one place.

All persistent artifacts of this package — saved rankers, experiment
documents, session snapshots, per-cell checkpoints, queue tickets, and
stored service sessions — share the same JSON envelope: an object with
``format`` (a stable ``repro.*`` marker naming the document kind) and
``version`` (an integer schema version readers refuse to misread).

Historically each module declared its own pair of constants, so a schema
bump meant hunting literals across layers.  This module is now the single
source of truth: the owning modules import (and re-export) their
constants from here, and the next version bump touches exactly one file.

Version history lives with the code that reads each document (e.g. the
snapshot-layout notes in :mod:`repro.core.session`); this module only
states the *current* schema of each kind.
"""

from __future__ import annotations

#: Declarative component/spec documents (:mod:`repro.specs.core`).
SPEC_VERSION = 1

#: Whole-experiment documents (:mod:`repro.specs.experiment`).
EXPERIMENT_FORMAT = "repro.experiment"
EXPERIMENT_VERSION = 1

#: Saved LHS rankers (:mod:`repro.persistence`).
RANKER_FORMAT = "repro.lhs_ranker"
RANKER_VERSION = 1

#: Mid-run engine snapshots (:meth:`repro.core.session.SessionEngine.snapshot`).
SNAPSHOT_FORMAT = "repro.al_session"
SNAPSHOT_VERSION = 3

#: Completed comparison-grid cells (:mod:`repro.experiments.checkpoint`).
CHECKPOINT_FORMAT = "repro.al_cell"
CHECKPOINT_VERSION = 2

#: In-flight round-level cell snapshots (:mod:`repro.experiments.checkpoint`).
SESSION_CHECKPOINT_FORMAT = "repro.al_cell_session"
SESSION_CHECKPOINT_VERSION = 2

#: One stored annotation session: recipe + engine snapshot.  Written by
#: the ``repro session`` directory workflow and by every
#: :class:`repro.service.SessionStore` backend — the service and the
#: file-based CLI persist the identical document.
SESSION_DIR_FORMAT = "repro.session_dir"
SESSION_DIR_VERSION = 1

#: Finished-session audit trails (``result.json`` / ``session result``).
SESSION_RESULT_FORMAT = "repro.session_result"
SESSION_RESULT_VERSION = 1

#: Distributed queue envelope (:mod:`repro.experiments.distributed`).
QUEUE_FORMAT = "repro.cell_queue"
QUEUE_VERSION = 1

#: Distributed per-cell tickets (:mod:`repro.experiments.distributed`).
CELL_FORMAT = "repro.cell_ticket"
CELL_VERSION = 1

#: Scenario-grid sweep documents (:mod:`repro.specs.sweep`).
SWEEP_FORMAT = "repro.sweep"
SWEEP_VERSION = 1

#: Current version of every named document format, for introspection.
DOCUMENT_VERSIONS = {
    EXPERIMENT_FORMAT: EXPERIMENT_VERSION,
    RANKER_FORMAT: RANKER_VERSION,
    SNAPSHOT_FORMAT: SNAPSHOT_VERSION,
    CHECKPOINT_FORMAT: CHECKPOINT_VERSION,
    SESSION_CHECKPOINT_FORMAT: SESSION_CHECKPOINT_VERSION,
    SESSION_DIR_FORMAT: SESSION_DIR_VERSION,
    SESSION_RESULT_FORMAT: SESSION_RESULT_VERSION,
    QUEUE_FORMAT: QUEUE_VERSION,
    CELL_FORMAT: CELL_VERSION,
    SWEEP_FORMAT: SWEEP_VERSION,
}

"""Token vocabulary with stable integer ids.

A :class:`Vocabulary` maps tokens to dense integer ids, reserving id 0 for
padding and id 1 for unknown tokens.  Vocabularies can be built
incrementally and then frozen; once frozen, unseen tokens map to the UNK id
instead of being added, which is the behaviour models need at test time.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from ..exceptions import DataError

PAD_TOKEN = "<pad>"
UNK_TOKEN = "<unk>"


class Vocabulary:
    """Bidirectional token/id mapping with PAD and UNK specials.

    Parameters
    ----------
    tokens:
        Optional initial tokens, added in iteration order after the two
        special tokens.
    """

    def __init__(self, tokens: Iterable[str] = ()) -> None:
        self._token_to_id: dict[str, int] = {PAD_TOKEN: 0, UNK_TOKEN: 1}
        self._id_to_token: list[str] = [PAD_TOKEN, UNK_TOKEN]
        self._frozen = False
        for token in tokens:
            self.add(token)

    @property
    def pad_id(self) -> int:
        """Id of the padding token (always 0)."""
        return 0

    @property
    def unk_id(self) -> int:
        """Id of the unknown token (always 1)."""
        return 1

    @property
    def frozen(self) -> bool:
        """Whether the vocabulary rejects new tokens."""
        return self._frozen

    def freeze(self) -> "Vocabulary":
        """Stop accepting new tokens; unseen tokens map to UNK afterwards."""
        self._frozen = True
        return self

    def add(self, token: str) -> int:
        """Add ``token`` and return its id (existing id if already present).

        Raises
        ------
        DataError
            If the vocabulary is frozen and the token is new.
        """
        if token in self._token_to_id:
            return self._token_to_id[token]
        if self._frozen:
            raise DataError(f"vocabulary is frozen; cannot add token {token!r}")
        token_id = len(self._id_to_token)
        self._token_to_id[token] = token_id
        self._id_to_token.append(token)
        return token_id

    def id_of(self, token: str) -> int:
        """Return the id for ``token``, or the UNK id when unseen."""
        return self._token_to_id.get(token, self.unk_id)

    def token_of(self, token_id: int) -> str:
        """Return the token string for ``token_id``.

        Raises
        ------
        DataError
            If the id is out of range.
        """
        if not 0 <= token_id < len(self._id_to_token):
            raise DataError(f"token id {token_id} out of range [0, {len(self)})")
        return self._id_to_token[token_id]

    def encode(self, tokens: Iterable[str]) -> list[int]:
        """Encode a token sequence to ids, adding new tokens if unfrozen."""
        if self._frozen:
            return [self.id_of(token) for token in tokens]
        return [self.add(token) for token in tokens]

    def decode(self, ids: Iterable[int]) -> list[str]:
        """Decode an id sequence back to token strings."""
        return [self.token_of(i) for i in ids]

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_token)

    def __repr__(self) -> str:
        state = "frozen" if self._frozen else "open"
        return f"Vocabulary(size={len(self)}, {state})"

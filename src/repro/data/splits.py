"""Dataset splitting: train/dev/test and k-fold cross-validation.

The paper splits MR and Subj into 10 folds for cross-validation and uses
the original train/dev/test split for SST-2, TREC and the CoNLL corpora.
Our synthetic presets come unsplit, so these helpers produce both kinds of
split deterministically.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError
from ..rng import ensure_rng


def train_dev_test_split(
    n: int,
    dev_fraction: float = 0.1,
    test_fraction: float = 0.1,
    seed_or_rng: "int | np.random.Generator | None" = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return shuffled (train, dev, test) index arrays over ``range(n)``.

    Raises
    ------
    ConfigurationError
        If the fractions are negative or sum to 1 or more.
    """
    if n <= 0:
        raise ConfigurationError(f"n must be positive, got {n}")
    if dev_fraction < 0 or test_fraction < 0 or dev_fraction + test_fraction >= 1:
        raise ConfigurationError(
            f"invalid fractions dev={dev_fraction}, test={test_fraction}"
        )
    rng = ensure_rng(seed_or_rng)
    order = rng.permutation(n)
    n_dev = int(round(n * dev_fraction))
    n_test = int(round(n * test_fraction))
    dev = order[:n_dev]
    test = order[n_dev : n_dev + n_test]
    train = order[n_dev + n_test :]
    return train, dev, test


def kfold_indices(
    n: int,
    k: int = 10,
    seed_or_rng: "int | np.random.Generator | None" = None,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Return ``k`` shuffled (train_indices, test_indices) folds.

    Every index appears in exactly one test fold; fold sizes differ by at
    most one.  Matches the 10-fold protocol the paper uses for MR/Subj.

    Raises
    ------
    ConfigurationError
        If ``k`` is less than 2 or greater than ``n``.
    """
    if k < 2:
        raise ConfigurationError(f"k must be >= 2, got {k}")
    if k > n:
        raise ConfigurationError(f"k={k} exceeds dataset size n={n}")
    rng = ensure_rng(seed_or_rng)
    order = rng.permutation(n)
    fold_test_indices = np.array_split(order, k)
    folds: list[tuple[np.ndarray, np.ndarray]] = []
    for test in fold_test_indices:
        mask = np.ones(n, dtype=bool)
        mask[test] = False
        folds.append((order[mask[order]], test))
    return folds


def stratified_sample(
    labels: np.ndarray,
    size: int,
    seed_or_rng: "int | np.random.Generator | None" = None,
) -> np.ndarray:
    """Sample ``size`` indices with per-class proportions preserved.

    Used to draw balanced initial labeled sets.  Rounds per-class quotas
    down and tops up with random remaining indices to reach ``size``.
    """
    if size < 0 or size > len(labels):
        raise ConfigurationError(f"size {size} out of range for {len(labels)} labels")
    rng = ensure_rng(seed_or_rng)
    chosen: list[np.ndarray] = []
    classes = np.unique(labels)
    for cls in classes:
        members = np.flatnonzero(labels == cls)
        quota = int(size * len(members) / len(labels))
        chosen.append(rng.choice(members, size=min(quota, len(members)), replace=False))
    picked = np.concatenate(chosen) if chosen else np.empty(0, dtype=np.int64)
    if len(picked) < size:
        remaining = np.setdiff1d(np.arange(len(labels)), picked)
        extra = rng.choice(remaining, size=size - len(picked), replace=False)
        picked = np.concatenate([picked, extra])
    return np.sort(picked[:size])

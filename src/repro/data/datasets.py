"""Dataset containers shared by models, strategies, and the AL loop.

Two container types cover the paper's two tasks:

* :class:`TextDataset` — variable-length token-id sequences with one class
  label each (text classification).
* :class:`SequenceDataset` — token-id sequences with one tag id per token
  (named entity recognition).

Both are immutable views over numpy data, support ``subset`` (used by the
pool to slice labeled/unlabeled data without copying the corpus), and carry
their vocabulary so models can size their embedding tables.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..exceptions import DataError
from .vocab import Vocabulary


def _as_id_array(sequence: Sequence[int]) -> np.ndarray:
    array = np.asarray(sequence, dtype=np.int64)
    if array.ndim != 1:
        raise DataError(f"token sequences must be 1-D, got shape {array.shape}")
    if array.size and array.min() < 0:
        raise DataError("token ids must be non-negative")
    return array


class TextDataset:
    """Labeled sentences for text classification.

    Parameters
    ----------
    sentences:
        One token-id sequence per sample.
    labels:
        Integer class label per sample, in ``[0, num_classes)``.
    vocab:
        The vocabulary the ids were produced with.
    num_classes:
        Total number of classes (may exceed ``labels.max() + 1`` when a
        subset happens to miss a class).
    name:
        Human-readable dataset name used in reports.
    """

    def __init__(
        self,
        sentences: Sequence[Sequence[int]],
        labels: Sequence[int],
        vocab: Vocabulary,
        num_classes: int,
        name: str = "text",
    ) -> None:
        self.sentences: list[np.ndarray] = [_as_id_array(s) for s in sentences]
        self.labels = np.asarray(labels, dtype=np.int64)
        if len(self.sentences) != len(self.labels):
            raise DataError(
                f"{len(self.sentences)} sentences but {len(self.labels)} labels"
            )
        if num_classes < 2:
            raise DataError(f"num_classes must be >= 2, got {num_classes}")
        if len(self.labels) and not (0 <= self.labels.min() and self.labels.max() < num_classes):
            raise DataError("labels out of range for num_classes")
        self.vocab = vocab
        self.num_classes = int(num_classes)
        self.name = name

    def __len__(self) -> int:
        return len(self.sentences)

    def subset(self, indices: Sequence[int]) -> "TextDataset":
        """Return a view-like dataset containing only ``indices``."""
        index_array = np.asarray(indices, dtype=np.int64)
        return TextDataset(
            [self.sentences[i] for i in index_array],
            self.labels[index_array],
            self.vocab,
            self.num_classes,
            name=self.name,
        )

    def lengths(self) -> np.ndarray:
        """Sentence lengths as an int array."""
        return np.array([len(s) for s in self.sentences], dtype=np.int64)

    def max_length(self) -> int:
        """Longest sentence length (0 for an empty dataset)."""
        return int(self.lengths().max()) if len(self) else 0

    def padded(self, max_length: int | None = None) -> np.ndarray:
        """Return an ``(n, max_length)`` matrix padded with the PAD id (0).

        Sentences longer than ``max_length`` are truncated.
        """
        if max_length is None:
            max_length = self.max_length()
        matrix = np.zeros((len(self), max_length), dtype=np.int64)
        for row, sentence in enumerate(self.sentences):
            k = min(len(sentence), max_length)
            matrix[row, :k] = sentence[:k]
        return matrix

    def bag_of_words(self, normalize: bool = True) -> np.ndarray:
        """Return ``(n, |V|)`` token-count features (L1-normalised rows).

        Empty sentences produce an all-zero row.
        """
        matrix = np.zeros((len(self), len(self.vocab)), dtype=np.float64)
        for row, sentence in enumerate(self.sentences):
            np.add.at(matrix[row], sentence, 1.0)
        if normalize:
            totals = matrix.sum(axis=1, keepdims=True)
            np.divide(matrix, totals, out=matrix, where=totals > 0)
        return matrix

    def class_counts(self) -> np.ndarray:
        """Number of samples per class, length ``num_classes``."""
        return np.bincount(self.labels, minlength=self.num_classes)

    def __repr__(self) -> str:
        return (
            f"TextDataset(name={self.name!r}, n={len(self)}, "
            f"classes={self.num_classes}, vocab={len(self.vocab)})"
        )


class SequenceDataset:
    """Token-tagged sentences for sequence labeling (NER).

    Parameters
    ----------
    sentences:
        One token-id sequence per sample.
    tag_sequences:
        One tag-id sequence per sample, same length as its sentence.
    vocab:
        Token vocabulary.
    tag_names:
        Tag-id -> tag-string table (e.g. ``["O", "B-PER", ...]``).
    name:
        Human-readable dataset name used in reports.
    """

    def __init__(
        self,
        sentences: Sequence[Sequence[int]],
        tag_sequences: Sequence[Sequence[int]],
        vocab: Vocabulary,
        tag_names: Sequence[str],
        name: str = "ner",
    ) -> None:
        self.sentences = [_as_id_array(s) for s in sentences]
        self.tag_sequences = [_as_id_array(t) for t in tag_sequences]
        if len(self.sentences) != len(self.tag_sequences):
            raise DataError(
                f"{len(self.sentences)} sentences but {len(self.tag_sequences)} tag sequences"
            )
        for i, (sentence, tags) in enumerate(zip(self.sentences, self.tag_sequences)):
            if len(sentence) != len(tags):
                raise DataError(
                    f"sentence {i}: {len(sentence)} tokens but {len(tags)} tags"
                )
        self.vocab = vocab
        self.tag_names = list(tag_names)
        if not self.tag_names:
            raise DataError("tag_names must not be empty")
        self.name = name

    @property
    def num_tags(self) -> int:
        """Size of the tag inventory."""
        return len(self.tag_names)

    def __len__(self) -> int:
        return len(self.sentences)

    def subset(self, indices: Sequence[int]) -> "SequenceDataset":
        """Return a dataset containing only ``indices``."""
        index_array = np.asarray(indices, dtype=np.int64)
        return SequenceDataset(
            [self.sentences[i] for i in index_array],
            [self.tag_sequences[i] for i in index_array],
            self.vocab,
            self.tag_names,
            name=self.name,
        )

    def lengths(self) -> np.ndarray:
        """Sentence lengths as an int array."""
        return np.array([len(s) for s in self.sentences], dtype=np.int64)

    def total_tokens(self) -> int:
        """Total token count across all sentences."""
        return int(self.lengths().sum()) if len(self) else 0

    def tags_as_strings(self, index: int) -> list[str]:
        """Decode the tag sequence of sentence ``index`` to strings."""
        return [self.tag_names[t] for t in self.tag_sequences[index]]

    def __repr__(self) -> str:
        return (
            f"SequenceDataset(name={self.name!r}, n={len(self)}, "
            f"tags={self.num_tags}, vocab={len(self.vocab)})"
        )

"""Dataset substrates: vocabularies, synthetic corpora, splits, tagging.

The paper evaluates on public corpora (MR, SST-2, Subj, TREC for text
classification; CoNLL-2002/2003 for NER).  This environment is offline, so
:mod:`repro.data.text` and :mod:`repro.data.ner` provide seeded synthetic
generators whose presets mirror the class counts, sizes, and difficulty
profile of those corpora (see DESIGN.md, "Substitutions").
"""

from .datasets import SequenceDataset, TextDataset
from .ner import NERCorpusSpec, conll2002_dutch, conll2002_spanish, conll2003_english, make_ner_corpus
from .splits import kfold_indices, train_dev_test_split
from .tagging import TagScheme, bio_to_bioes, bioes_to_bio, validate_tags
from .text import TextCorpusSpec, make_text_corpus, mr, sst2, subj, trec
from .vocab import Vocabulary

__all__ = [
    "NERCorpusSpec",
    "SequenceDataset",
    "TagScheme",
    "TextCorpusSpec",
    "TextDataset",
    "Vocabulary",
    "bio_to_bioes",
    "bioes_to_bio",
    "conll2002_dutch",
    "conll2002_spanish",
    "conll2003_english",
    "kfold_indices",
    "make_ner_corpus",
    "make_text_corpus",
    "mr",
    "sst2",
    "subj",
    "trec",
    "train_dev_test_split",
    "validate_tags",
]

"""Synthetic text-classification corpora.

The paper evaluates on MR, SST-2, Subj (binary) and TREC (6-class).  Those
corpora are not available offline, so this module generates seeded
class-conditional corpora whose *difficulty profile* — the property
active-learning dynamics actually depend on — is controlled explicitly:

* a shared Zipfian background vocabulary (function/noise words);
* per-class indicative vocabulary organised into **facets** (sub-topics)
  with a skewed Zipf prior.  Rare facets make the pool redundant in the
  way real corpora are: random sampling keeps re-labeling the common
  facets while uncertainty sampling hunts the unlearned rare ones, which
  is what gives informative strategies their advantage;
* each sentence draws its indicative words from a small mixture of
  facets, so the high-uncertainty tail stays diverse and batch selection
  is not trivially redundant;
* a per-sample "purity" drawn from a Beta distribution, creating a
  spectrum from easy (many indicative words) to hard samples;
* a fraction of *ambiguous* samples whose indicative words mix two
  classes — boundary samples that produce exactly the unstable
  historical score sequences the paper's Figure 2 describes.

Presets :func:`mr`, :func:`sst2`, :func:`subj` and :func:`trec` mirror the
class counts and (scaled) sizes of Table 3 in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ConfigurationError
from ..rng import ensure_rng
from .datasets import TextDataset
from .vocab import Vocabulary


@dataclass(frozen=True)
class TextCorpusSpec:
    """Parameters of a synthetic classification corpus.

    Attributes
    ----------
    name:
        Corpus name used in reports.
    num_classes:
        Number of target classes.
    size:
        Number of sentences to generate.
    background_vocab:
        Number of shared background (non-indicative) word types.
    facets_per_class:
        Sub-topics per class; each owns ``facet_vocab`` word types.
    facet_vocab:
        Indicative word types per facet.
    facets_per_sample:
        How many facets one sentence's indicative words mix over.
    facet_zipf:
        Skew of the facet prior (higher = more pool redundancy).
    min_length, max_length:
        Sentence length is uniform in ``[min_length, max_length]``.
    purity_alpha, purity_beta:
        Beta-distribution parameters of the per-sample fraction of
        indicative words; lower mean -> harder corpus.
    ambiguous_fraction:
        Fraction of samples whose indicative words are drawn from a
        two-class mixture (boundary samples).
    pretrained_coverage:
        Fraction of word types flagged as having a "pretrained" embedding
        (mirrors the V_pre column of Table 3).
    zipf_exponent:
        Skew of the background word distribution.
    class_priors:
        Optional non-uniform class prior (TREC is imbalanced).
    """

    name: str
    num_classes: int
    size: int
    background_vocab: int = 800
    facets_per_class: int = 24
    facet_vocab: int = 12
    facets_per_sample: int = 2
    facet_zipf: float = 1.4
    min_length: int = 8
    max_length: int = 40
    purity_alpha: float = 1.8
    purity_beta: float = 4.5
    ambiguous_fraction: float = 0.10
    pretrained_coverage: float = 0.88
    zipf_exponent: float = 1.1
    class_priors: tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.num_classes < 2:
            raise ConfigurationError(f"num_classes must be >= 2, got {self.num_classes}")
        if self.size <= 0:
            raise ConfigurationError(f"size must be positive, got {self.size}")
        if self.facets_per_class < 1 or self.facet_vocab < 1:
            raise ConfigurationError("facets_per_class and facet_vocab must be >= 1")
        if not 1 <= self.facets_per_sample <= self.facets_per_class:
            raise ConfigurationError(
                f"facets_per_sample must be in [1, {self.facets_per_class}], "
                f"got {self.facets_per_sample}"
            )
        if not 0 < self.min_length <= self.max_length:
            raise ConfigurationError(
                f"invalid length range [{self.min_length}, {self.max_length}]"
            )
        if not 0 <= self.ambiguous_fraction < 1:
            raise ConfigurationError(
                f"ambiguous_fraction must be in [0, 1), got {self.ambiguous_fraction}"
            )
        if self.class_priors and len(self.class_priors) != self.num_classes:
            raise ConfigurationError(
                f"class_priors has {len(self.class_priors)} entries "
                f"for {self.num_classes} classes"
            )

    @property
    def class_vocab(self) -> int:
        """Total indicative word types per class."""
        return self.facets_per_class * self.facet_vocab

    def scaled(self, scale: float) -> "TextCorpusSpec":
        """Return a copy with ``size`` and vocabulary scaled by ``scale``.

        Benchmarks use scaled-down presets so laptop-speed models can run
        many active-learning repetitions; the difficulty knobs are kept.
        """
        if scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {scale}")
        if scale == 1.0:
            return self
        return TextCorpusSpec(
            name=self.name,
            num_classes=self.num_classes,
            size=max(self.num_classes * 10, int(self.size * scale)),
            background_vocab=max(200, int(self.background_vocab * scale)),
            facets_per_class=self.facets_per_class,
            facet_vocab=self.facet_vocab,
            facets_per_sample=self.facets_per_sample,
            facet_zipf=self.facet_zipf,
            min_length=self.min_length,
            max_length=self.max_length,
            purity_alpha=self.purity_alpha,
            purity_beta=self.purity_beta,
            ambiguous_fraction=self.ambiguous_fraction,
            pretrained_coverage=self.pretrained_coverage,
            zipf_exponent=self.zipf_exponent,
            class_priors=self.class_priors,
        )


def _zipf_probabilities(n: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks**-exponent
    return weights / weights.sum()


def make_text_corpus(
    spec: TextCorpusSpec,
    seed_or_rng: "int | np.random.Generator | None" = None,
) -> TextDataset:
    """Generate a :class:`TextDataset` from ``spec`` deterministically.

    The returned dataset carries two extra attributes used elsewhere:

    * ``pretrained_mask`` — boolean per-vocab-id flag mirroring V_pre;
    * ``ambiguous_mask`` — boolean per-sample flag for boundary samples.
    """
    rng = ensure_rng(seed_or_rng)
    vocab = Vocabulary()
    background_ids = np.array(
        [vocab.add(f"w{i}") for i in range(spec.background_vocab)], dtype=np.int64
    )
    facet_ids = {
        (cls, facet): np.array(
            [vocab.add(f"c{cls}f{facet}_{i}") for i in range(spec.facet_vocab)],
            dtype=np.int64,
        )
        for cls in range(spec.num_classes)
        for facet in range(spec.facets_per_class)
    }
    vocab.freeze()

    background_probs = _zipf_probabilities(spec.background_vocab, spec.zipf_exponent)
    facet_probs = _zipf_probabilities(spec.facets_per_class, spec.facet_zipf)
    priors = (
        np.asarray(spec.class_priors, dtype=np.float64)
        if spec.class_priors
        else np.full(spec.num_classes, 1.0 / spec.num_classes)
    )
    priors = priors / priors.sum()

    labels = rng.choice(spec.num_classes, size=spec.size, p=priors)
    lengths = rng.integers(spec.min_length, spec.max_length + 1, size=spec.size)
    purities = rng.beta(spec.purity_alpha, spec.purity_beta, size=spec.size)
    ambiguous = rng.random(spec.size) < spec.ambiguous_fraction
    other_classes = (
        labels + rng.integers(1, spec.num_classes, size=spec.size)
    ) % spec.num_classes
    mix_shares = rng.uniform(0.3, 0.5, size=spec.size)  # share of the *other* class

    sentences: list[np.ndarray] = []
    for i in range(spec.size):
        length = int(lengths[i])
        n_indicative = max(1, int(round(length * purities[i])))
        n_background = max(0, length - n_indicative)
        facets = rng.choice(
            spec.facets_per_class, size=spec.facets_per_sample, p=facet_probs
        )
        own_lexicon = np.concatenate([facet_ids[(labels[i], f)] for f in facets])
        tokens = [rng.choice(background_ids, size=n_background, p=background_probs)]
        if ambiguous[i]:
            n_other = int(round(n_indicative * mix_shares[i]))
            n_own = n_indicative - n_other
            other_facet = rng.choice(spec.facets_per_class, p=facet_probs)
            tokens.append(rng.choice(own_lexicon, size=n_own))
            tokens.append(
                rng.choice(facet_ids[(other_classes[i], other_facet)], size=n_other)
            )
        else:
            tokens.append(rng.choice(own_lexicon, size=n_indicative))
        sentence = np.concatenate(tokens)
        rng.shuffle(sentence)
        sentences.append(sentence)

    dataset = TextDataset(sentences, labels, vocab, spec.num_classes, name=spec.name)
    pretrained_mask = np.zeros(len(vocab), dtype=bool)
    covered = rng.random(len(vocab)) < spec.pretrained_coverage
    pretrained_mask[covered] = True
    pretrained_mask[:2] = False  # PAD/UNK never have pretrained vectors
    dataset.pretrained_mask = pretrained_mask
    dataset.ambiguous_mask = ambiguous
    return dataset


# --------------------------------------------------------------------------
# Presets mirroring Table 3 of the paper.
# --------------------------------------------------------------------------

MR_SPEC = TextCorpusSpec(
    name="MR", num_classes=2, size=10_662, background_vocab=2400,
    facets_per_class=24, facet_vocab=12, min_length=8, max_length=56,
    ambiguous_fraction=0.12,
)
SST2_SPEC = TextCorpusSpec(
    name="SST-2", num_classes=2, size=9_613, background_vocab=2200,
    facets_per_class=24, facet_vocab=12, min_length=8, max_length=53,
    ambiguous_fraction=0.10,
)
SUBJ_SPEC = TextCorpusSpec(
    name="Subj", num_classes=2, size=10_000, background_vocab=2900,
    facets_per_class=24, facet_vocab=12, min_length=6, max_length=23,
    ambiguous_fraction=0.08,
)
TREC_SPEC = TextCorpusSpec(
    name="TREC", num_classes=6, size=5_952, background_vocab=1200,
    facets_per_class=12, facet_vocab=10, min_length=5, max_length=37,
    ambiguous_fraction=0.10,
    class_priors=(0.23, 0.21, 0.20, 0.16, 0.12, 0.08),
)


def mr(scale: float = 1.0, seed_or_rng: "int | np.random.Generator | None" = None) -> TextDataset:
    """Synthetic stand-in for the Movie Review (MR) corpus."""
    return make_text_corpus(MR_SPEC.scaled(scale), seed_or_rng)


def sst2(scale: float = 1.0, seed_or_rng: "int | np.random.Generator | None" = None) -> TextDataset:
    """Synthetic stand-in for the SST-2 corpus."""
    return make_text_corpus(SST2_SPEC.scaled(scale), seed_or_rng)


def subj(scale: float = 1.0, seed_or_rng: "int | np.random.Generator | None" = None) -> TextDataset:
    """Synthetic stand-in for the Subj corpus (used to train the LHS ranker)."""
    return make_text_corpus(SUBJ_SPEC.scaled(scale), seed_or_rng)


def trec(scale: float = 1.0, seed_or_rng: "int | np.random.Generator | None" = None) -> TextDataset:
    """Synthetic stand-in for the 6-class TREC question corpus."""
    return make_text_corpus(TREC_SPEC.scaled(scale), seed_or_rng)

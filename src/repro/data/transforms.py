"""Scenario transforms: deterministic perturbations of experiment data.

ALE-style sweeps (ROADMAP item 4) stress-test strategies across
*scenarios* — perturbed variants of a base experiment.  Each transform
here is one pluggable perturbation knob:

* :class:`LabelNoise` — flip a fraction of *training* labels (text
  classification) or token tags (sequence labeling), simulating noisy
  annotators.
* :class:`ClassImbalance` — deterministically downsample one class of
  the training pool, simulating skewed real-world pools.
* :class:`LexiconShift` — remap a fraction of token ids in the *test*
  set, simulating concept drift between annotation time and deployment
  time (the training pool keeps the lexicon the annotators saw).
* :class:`AnnotationCost` — attach a per-sample labeling-cost model
  (constant, length-proportional, or per-class) consumed by the
  cost-normalised metrics; the data itself is untouched.
* :class:`IdentityTransform` — the explicit no-op, so a scenario axis
  can include "unperturbed" as a point.

RNG-stream discipline
---------------------
Transforms never consume the experiment's run RNG.  A scenario applies
transform ``i`` with ``np.random.default_rng([scenario_seed, i])``
(see :class:`repro.specs.transforms.ScenarioSpec`), so:

* every cell of a sweep (any strategy, repeat, or worker) sees the
  byte-identical perturbed dataset;
* adding, removing, or reordering transforms changes only the streams
  of the transforms whose position changed;
* run-level determinism (selection, training) is untouched — a
  scenario-free run is bit-for-bit the run we shipped before sweeps
  existed.

Transforms are pure: they return new dataset objects and never mutate
their inputs.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError, DataError
from .datasets import SequenceDataset, TextDataset


def _copy_text(dataset: TextDataset, sentences=None, labels=None) -> TextDataset:
    return TextDataset(
        dataset.sentences if sentences is None else sentences,
        dataset.labels if labels is None else labels,
        dataset.vocab,
        dataset.num_classes,
        name=dataset.name,
    )


class ScenarioTransform:
    """Base class: one deterministic perturbation of (train, test) data.

    Subclasses override :meth:`apply` (dataset perturbations) and/or
    :meth:`costs` (annotation-cost models).  ``params()`` must return
    the JSON params that rebuild the transform — it feeds both the spec
    registry's ``params_of`` and the checkpoint fingerprint.
    """

    kind: str = ""

    def apply(self, train, test, rng: np.random.Generator):
        """Return the perturbed ``(train, test)`` pair."""
        return train, test

    def costs(self, train) -> "np.ndarray | None":
        """Per-sample annotation-cost vector for ``train``, or ``None``."""
        return None

    def params(self) -> dict:
        """Return the constructor parameters for spec serialization."""
        return {}

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.params().items())
        return f"{type(self).__name__}({inner})"


class IdentityTransform(ScenarioTransform):
    """The explicit no-op perturbation."""

    kind = "identity"


class LabelNoise(ScenarioTransform):
    """Flip a fraction of training labels to a uniform *different* value.

    Exactly ``round(rate * n)`` samples (text) or tokens (sequence
    labeling) are flipped, chosen without replacement, so the noise
    level is exact rather than merely expected.
    """

    kind = "label_noise"

    def __init__(self, rate: float = 0.1) -> None:
        rate = float(rate)
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(f"label_noise rate must be in [0, 1], got {rate}")
        self.rate = rate

    def params(self) -> dict:
        """Return the constructor parameters for spec serialization."""
        return {"rate": self.rate}

    def apply(self, train, test, rng: np.random.Generator):
        if self.rate == 0.0 or len(train) == 0:
            return train, test
        if isinstance(train, TextDataset):
            return self._apply_text(train, rng), test
        if isinstance(train, SequenceDataset):
            return self._apply_sequence(train, rng), test
        raise DataError(
            f"label_noise does not support {type(train).__name__} datasets"
        )

    def _apply_text(self, train: TextDataset, rng: np.random.Generator) -> TextDataset:
        n_flips = int(round(self.rate * len(train)))
        if n_flips == 0:
            return train
        victims = rng.choice(len(train), size=n_flips, replace=False)
        labels = train.labels.copy()
        # uniform over the OTHER classes: draw in [0, C-1) and skip past
        # the true label so the flip always changes the label
        offsets = rng.integers(0, train.num_classes - 1, size=n_flips)
        labels[victims] = (labels[victims] + 1 + offsets) % train.num_classes
        return _copy_text(train, labels=labels)

    def _apply_sequence(
        self, train: SequenceDataset, rng: np.random.Generator
    ) -> SequenceDataset:
        lengths = train.lengths()
        total = int(lengths.sum())
        n_flips = int(round(self.rate * total))
        if n_flips == 0 or train.num_tags < 2:
            return train
        flat = np.concatenate(train.tag_sequences) if total else np.array([], np.int64)
        victims = rng.choice(total, size=n_flips, replace=False)
        offsets = rng.integers(0, train.num_tags - 1, size=n_flips)
        flat = flat.copy()
        flat[victims] = (flat[victims] + 1 + offsets) % train.num_tags
        bounds = np.cumsum(lengths)[:-1]
        tag_sequences = np.split(flat, bounds)
        return SequenceDataset(
            train.sentences,
            [seq for seq in tag_sequences],
            train.vocab,
            train.tag_names,
            name=train.name,
        )


class ClassImbalance(ScenarioTransform):
    """Downsample one class of the training pool to ``keep`` of its size.

    Only classification pools can be resampled this way; sequence
    datasets are rejected with :class:`~repro.exceptions.DataError`.
    Kept samples preserve their original order, so the pool's index
    space stays reproducible.
    """

    kind = "class_imbalance"

    def __init__(self, class_id: int = 0, keep: float = 0.5) -> None:
        keep = float(keep)
        if not 0.0 < keep <= 1.0:
            raise ConfigurationError(
                f"class_imbalance keep must be in (0, 1], got {keep}"
            )
        self.class_id = int(class_id)
        self.keep = keep

    def params(self) -> dict:
        """Return the constructor parameters for spec serialization."""
        return {"class_id": self.class_id, "keep": self.keep}

    def apply(self, train, test, rng: np.random.Generator):
        if not isinstance(train, TextDataset):
            raise DataError(
                f"class_imbalance requires a classification dataset, "
                f"got {type(train).__name__}"
            )
        if not 0 <= self.class_id < train.num_classes:
            raise DataError(
                f"class_imbalance class_id {self.class_id} out of range "
                f"for {train.num_classes} classes"
            )
        members = np.flatnonzero(train.labels == self.class_id)
        n_keep = int(round(self.keep * members.size))
        if n_keep >= members.size:
            return train, test
        kept = rng.choice(members, size=n_keep, replace=False)
        dropped = np.zeros(len(train), dtype=bool)
        dropped[members] = True
        dropped[kept] = False
        survivors = np.flatnonzero(~dropped)
        return train.subset(survivors), test


class LexiconShift(ScenarioTransform):
    """Remap a fraction of token ids in the *test* set (concept drift).

    Models the lexicon drifting between annotation time and deployment
    time: the training pool keeps the vocabulary the annotators labeled,
    while evaluation sentences have ``rate`` of the (non-padding) vocab
    ids permuted among themselves.  Works for both dataset flavours.
    """

    kind = "lexicon_shift"

    def __init__(self, rate: float = 0.2) -> None:
        rate = float(rate)
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(
                f"lexicon_shift rate must be in [0, 1], got {rate}"
            )
        self.rate = rate

    def params(self) -> dict:
        """Return the constructor parameters for spec serialization."""
        return {"rate": self.rate}

    def apply(self, train, test, rng: np.random.Generator):
        vocab_size = len(test.vocab)
        # never remap id 0: it is the PAD token in padded() matrices
        candidates = np.arange(1, vocab_size, dtype=np.int64)
        n_shift = int(round(self.rate * candidates.size))
        if n_shift < 2:
            return train, test
        shifted = rng.choice(candidates, size=n_shift, replace=False)
        mapping = np.arange(vocab_size, dtype=np.int64)
        mapping[shifted] = shifted[rng.permutation(n_shift)]
        sentences = [mapping[sentence] for sentence in test.sentences]
        if isinstance(test, TextDataset):
            return train, _copy_text(test, sentences=sentences)
        if isinstance(test, SequenceDataset):
            return train, SequenceDataset(
                sentences,
                test.tag_sequences,
                test.vocab,
                test.tag_names,
                name=test.name,
            )
        raise DataError(
            f"lexicon_shift does not support {type(test).__name__} datasets"
        )


class AnnotationCost(ScenarioTransform):
    """Per-sample annotation-cost model for cost-normalised metrics.

    ``model`` selects how much labeling one training sample costs:

    * ``constant`` — every sample costs ``value`` (default 1.0; this is
      also the implicit model when a scenario has no cost transform).
    * ``length`` — ``base + per_token * len(sentence)``, the classic
      "longer sentences take longer to annotate".
    * ``class`` — ``weights[label]`` per true class (classification
      only), e.g. rare-class instances needing expert annotators.

    The data itself is never modified.
    """

    kind = "annotation_cost"

    MODELS = ("constant", "length", "class")

    def __init__(
        self,
        model: str = "constant",
        value: float = 1.0,
        base: float = 1.0,
        per_token: float = 0.1,
        weights: "list[float] | None" = None,
    ) -> None:
        if model not in self.MODELS:
            raise ConfigurationError(
                f"annotation_cost model must be one of {self.MODELS}, got {model!r}"
            )
        if model == "class" and not weights:
            raise ConfigurationError("annotation_cost model 'class' needs weights")
        self.model = model
        self.value = float(value)
        self.base = float(base)
        self.per_token = float(per_token)
        self.weights = None if weights is None else [float(w) for w in weights]

    def params(self) -> dict:
        """Return the constructor parameters for spec serialization."""
        params: dict = {"model": self.model}
        if self.model == "constant":
            params["value"] = self.value
        elif self.model == "length":
            params["base"] = self.base
            params["per_token"] = self.per_token
        else:
            params["weights"] = list(self.weights or [])
        return params

    def costs(self, train) -> np.ndarray:
        if self.model == "constant":
            return np.full(len(train), self.value, dtype=np.float64)
        if self.model == "length":
            return self.base + self.per_token * train.lengths().astype(np.float64)
        if not isinstance(train, TextDataset):
            raise DataError(
                "annotation_cost model 'class' requires a classification dataset"
            )
        weights = np.asarray(self.weights, dtype=np.float64)
        if weights.size < train.num_classes:
            raise DataError(
                f"annotation_cost weights cover {weights.size} classes but the "
                f"dataset has {train.num_classes}"
            )
        return weights[train.labels]

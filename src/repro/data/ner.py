"""Synthetic named-entity-recognition corpora.

Stand-ins for the CoNLL-2003 English and CoNLL-2002 Spanish/Dutch corpora
(Table 4 of the paper).  Each synthetic "language" has:

* a background vocabulary of context words with Zipfian frequencies,
* one gazetteer per entity type (PER, ORG, LOC, MISC) whose surface forms
  are 1-3 tokens long,
* per-language sentence-length and entity-density profiles matching the
  token/sentence ratios of Table 4 (Spanish sentences are ~2.3x longer
  than English ones, which is what makes the MNLP length-normalisation
  experiment meaningful),
* trigger words that precede entities of a given type, so a feature-based
  CRF can actually learn the task.

Tags are produced in BIO and converted to BIOES following Ma & Hovy
(2016), as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError
from ..rng import ensure_rng
from .datasets import SequenceDataset
from .tagging import bio_to_bioes
from .vocab import Vocabulary

ENTITY_TYPES = ("PER", "ORG", "LOC", "MISC")


def bioes_tag_names(entity_types: tuple[str, ...] = ENTITY_TYPES) -> list[str]:
    """The full BIOES tag inventory for ``entity_types`` (``O`` first)."""
    names = ["O"]
    for entity_type in entity_types:
        names.extend(f"{prefix}-{entity_type}" for prefix in ("B", "I", "E", "S"))
    return names


@dataclass(frozen=True)
class NERCorpusSpec:
    """Parameters of a synthetic NER corpus.

    Attributes
    ----------
    name:
        Corpus name used in reports.
    size:
        Number of sentences.
    background_vocab:
        Number of context word types.
    gazetteer_size:
        Entity surface-form head words per entity type.
    trigger_words:
        Number of type-indicative trigger words per entity type.
    mean_length, length_spread:
        Sentence length ~ max(3, round(Normal(mean, spread))).
    entity_rate:
        Expected entities per 10 tokens.
    max_entity_length:
        Longest entity mention in tokens.
    trigger_prob:
        Probability an entity is preceded by one of its trigger words.
    """

    name: str
    size: int
    background_vocab: int = 1500
    gazetteer_size: int = 120
    trigger_words: int = 12
    mean_length: float = 14.0
    length_spread: float = 5.0
    entity_rate: float = 1.2
    max_entity_length: int = 3
    trigger_prob: float = 0.7
    zipf_exponent: float = 1.05

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ConfigurationError(f"size must be positive, got {self.size}")
        if self.mean_length < 3:
            raise ConfigurationError(f"mean_length must be >= 3, got {self.mean_length}")
        if self.max_entity_length < 1:
            raise ConfigurationError(
                f"max_entity_length must be >= 1, got {self.max_entity_length}"
            )
        if not 0 <= self.trigger_prob <= 1:
            raise ConfigurationError(f"trigger_prob must be in [0,1], got {self.trigger_prob}")

    def scaled(self, scale: float) -> "NERCorpusSpec":
        """Copy with ``size`` and vocabulary scaled by ``scale``."""
        if scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {scale}")
        return NERCorpusSpec(
            name=self.name,
            size=max(50, int(self.size * scale)),
            background_vocab=max(150, int(self.background_vocab * scale)),
            gazetteer_size=max(25, int(self.gazetteer_size * scale)),
            trigger_words=self.trigger_words,
            mean_length=self.mean_length,
            length_spread=self.length_spread,
            entity_rate=self.entity_rate,
            max_entity_length=self.max_entity_length,
            trigger_prob=self.trigger_prob,
            zipf_exponent=self.zipf_exponent,
        )


def make_ner_corpus(
    spec: NERCorpusSpec,
    seed_or_rng: "int | np.random.Generator | None" = None,
) -> SequenceDataset:
    """Generate a BIOES-tagged :class:`SequenceDataset` from ``spec``."""
    rng = ensure_rng(seed_or_rng)
    vocab = Vocabulary()
    background_ids = np.array(
        [vocab.add(f"{spec.name.lower()}_w{i}") for i in range(spec.background_vocab)],
        dtype=np.int64,
    )
    gazetteers = {
        entity_type: np.array(
            [vocab.add(f"{entity_type}_{i}") for i in range(spec.gazetteer_size)],
            dtype=np.int64,
        )
        for entity_type in ENTITY_TYPES
    }
    triggers = {
        entity_type: np.array(
            [vocab.add(f"trig_{entity_type}_{i}") for i in range(spec.trigger_words)],
            dtype=np.int64,
        )
        for entity_type in ENTITY_TYPES
    }
    vocab.freeze()

    ranks = np.arange(1, spec.background_vocab + 1, dtype=np.float64)
    background_probs = ranks**-spec.zipf_exponent
    background_probs /= background_probs.sum()
    # MISC is rarer than the other types, as in CoNLL.
    type_probs = np.array([0.32, 0.27, 0.29, 0.12])

    tag_names = bioes_tag_names()
    tag_ids = {tag: i for i, tag in enumerate(tag_names)}

    sentences: list[np.ndarray] = []
    tag_sequences: list[np.ndarray] = []
    for _ in range(spec.size):
        length = max(3, int(round(rng.normal(spec.mean_length, spec.length_spread))))
        n_entities = rng.poisson(spec.entity_rate * length / 10.0)
        tokens: list[int] = []
        bio_tags: list[str] = []
        remaining_entities = n_entities
        while len(tokens) < length:
            budget = length - len(tokens)
            if remaining_entities > 0 and budget >= 2 and rng.random() < 0.5:
                entity_type = ENTITY_TYPES[rng.choice(len(ENTITY_TYPES), p=type_probs)]
                if rng.random() < spec.trigger_prob:
                    tokens.append(int(rng.choice(triggers[entity_type])))
                    bio_tags.append("O")
                    budget -= 1
                span = int(rng.integers(1, min(spec.max_entity_length, max(1, budget)) + 1))
                mention = rng.choice(gazetteers[entity_type], size=span)
                tokens.extend(int(t) for t in mention)
                bio_tags.append(f"B-{entity_type}")
                bio_tags.extend(f"I-{entity_type}" for _ in range(span - 1))
                remaining_entities -= 1
            else:
                tokens.append(int(rng.choice(background_ids, p=background_probs)))
                bio_tags.append("O")
        tokens = tokens[:length]
        bio_tags = bio_tags[:length]
        # Truncation can cut an entity; re-validate by trimming a dangling
        # B/I whose continuation was removed is unnecessary because BIO is
        # always legal prefix-wise, so direct conversion is safe.
        bioes = bio_to_bioes(bio_tags)
        sentences.append(np.asarray(tokens, dtype=np.int64))
        tag_sequences.append(np.asarray([tag_ids[t] for t in bioes], dtype=np.int64))

    return SequenceDataset(sentences, tag_sequences, vocab, tag_names, name=spec.name)


# --------------------------------------------------------------------------
# Presets mirroring Table 4 of the paper (train-split sentence counts; the
# token/sentence ratios give the per-language length profile).
# --------------------------------------------------------------------------

CONLL2003_EN_SPEC = NERCorpusSpec(
    name="CoNLL-2003-English", size=14_987, mean_length=13.6, length_spread=5.0,
    entity_rate=1.5,
)
CONLL2002_ES_SPEC = NERCorpusSpec(
    name="CoNLL-2002-Spanish", size=8_322, mean_length=31.8, length_spread=12.0,
    entity_rate=0.7,
)
CONLL2002_NL_SPEC = NERCorpusSpec(
    name="CoNLL-2002-Dutch", size=15_806, mean_length=12.8, length_spread=6.0,
    entity_rate=1.0,
)


def conll2003_english(
    scale: float = 1.0, seed_or_rng: "int | np.random.Generator | None" = None
) -> SequenceDataset:
    """Synthetic stand-in for CoNLL-2003 English."""
    return make_ner_corpus(CONLL2003_EN_SPEC.scaled(scale), seed_or_rng)


def conll2002_spanish(
    scale: float = 1.0, seed_or_rng: "int | np.random.Generator | None" = None
) -> SequenceDataset:
    """Synthetic stand-in for CoNLL-2002 Spanish (long sentences)."""
    return make_ner_corpus(CONLL2002_ES_SPEC.scaled(scale), seed_or_rng)


def conll2002_dutch(
    scale: float = 1.0, seed_or_rng: "int | np.random.Generator | None" = None
) -> SequenceDataset:
    """Synthetic stand-in for CoNLL-2002 Dutch."""
    return make_ner_corpus(CONLL2002_NL_SPEC.scaled(scale), seed_or_rng)

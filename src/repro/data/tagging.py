"""Sequence-tagging schemes (BIO, BIOES) and conversions between them.

The paper follows Ma & Hovy (2016) in converting the CoNLL corpora from the
BIO scheme to BIOES before training the sequence labeler.  This module
implements both schemes, validation, the BIO -> BIOES and BIOES -> BIO
conversions, and span extraction used by the entity-level F1 metric.
"""

from __future__ import annotations

from collections.abc import Sequence
from enum import Enum

from ..exceptions import DataError

OUTSIDE = "O"


class TagScheme(str, Enum):
    """Supported chunk-tagging schemes."""

    BIO = "BIO"
    BIOES = "BIOES"

    @property
    def prefixes(self) -> frozenset[str]:
        """Valid tag prefixes for the scheme (excluding ``O``)."""
        if self is TagScheme.BIO:
            return frozenset({"B", "I"})
        return frozenset({"B", "I", "E", "S"})


def split_tag(tag: str) -> tuple[str, str]:
    """Split ``"B-PER"`` into ``("B", "PER")``; ``"O"`` -> ``("O", "")``.

    Raises
    ------
    DataError
        If the tag has a prefix but no entity type (e.g. ``"B-"``).
    """
    if tag == OUTSIDE:
        return OUTSIDE, ""
    prefix, sep, entity_type = tag.partition("-")
    if not sep or not entity_type:
        raise DataError(f"malformed tag {tag!r}: expected 'PREFIX-TYPE' or 'O'")
    return prefix, entity_type


def validate_tags(tags: Sequence[str], scheme: TagScheme = TagScheme.BIO) -> None:
    """Check that ``tags`` is a legal sequence under ``scheme``.

    Raises
    ------
    DataError
        On an unknown prefix, an ``I`` (or ``E``) tag that does not
        continue a chunk of the same type, or a BIOES chunk that is never
        closed by ``E``/``S``.
    """
    open_type: str | None = None
    for position, tag in enumerate(tags):
        prefix, entity_type = split_tag(tag)
        if prefix == OUTSIDE:
            if scheme is TagScheme.BIOES and open_type is not None:
                raise DataError(f"position {position}: chunk of type {open_type!r} not closed before 'O'")
            open_type = None
            continue
        if prefix not in scheme.prefixes:
            raise DataError(f"position {position}: prefix {prefix!r} invalid for scheme {scheme.value}")
        if prefix in ("I", "E"):
            if open_type != entity_type:
                raise DataError(
                    f"position {position}: tag {tag!r} does not continue an open {entity_type!r} chunk"
                )
        if scheme is TagScheme.BIOES:
            if prefix in ("B",) and open_type is not None:
                raise DataError(f"position {position}: 'B' while {open_type!r} chunk still open")
            if prefix == "S" and open_type is not None:
                raise DataError(f"position {position}: 'S' while {open_type!r} chunk still open")
        if prefix in ("B", "I"):
            open_type = entity_type
        else:  # E or S close the chunk
            open_type = None
    if scheme is TagScheme.BIOES and open_type is not None:
        raise DataError(f"sequence ended with an unclosed {open_type!r} chunk")


def bio_to_bioes(tags: Sequence[str]) -> list[str]:
    """Convert a BIO tag sequence to BIOES.

    Single-token chunks become ``S-*`` and the last token of a multi-token
    chunk becomes ``E-*``; other tags are preserved.
    """
    validate_tags(tags, TagScheme.BIO)
    converted: list[str] = []
    n = len(tags)
    for position, tag in enumerate(tags):
        prefix, entity_type = split_tag(tag)
        if prefix == OUTSIDE:
            converted.append(OUTSIDE)
            continue
        next_prefix = OUTSIDE
        if position + 1 < n:
            next_prefix, next_type = split_tag(tags[position + 1])
            if next_prefix == "I" and next_type != entity_type:
                next_prefix = OUTSIDE
        continues = next_prefix == "I"
        if prefix == "B":
            converted.append(f"B-{entity_type}" if continues else f"S-{entity_type}")
        else:  # prefix == "I"
            converted.append(f"I-{entity_type}" if continues else f"E-{entity_type}")
    return converted


def bioes_to_bio(tags: Sequence[str]) -> list[str]:
    """Convert a BIOES tag sequence back to BIO (inverse of bio_to_bioes)."""
    validate_tags(tags, TagScheme.BIOES)
    converted: list[str] = []
    for tag in tags:
        prefix, entity_type = split_tag(tag)
        if prefix == OUTSIDE:
            converted.append(OUTSIDE)
        elif prefix in ("B", "S"):
            converted.append(f"B-{entity_type}")
        else:  # I or E
            converted.append(f"I-{entity_type}")
    return converted


def extract_spans(tags: Sequence[str]) -> set[tuple[int, int, str]]:
    """Extract entity spans ``(start, end_exclusive, type)`` from tags.

    Accepts either BIO or BIOES input; the prefixes are interpreted
    permissively (an ``I`` with no open chunk starts a new one, matching
    the conlleval convention), so this is safe on noisy model predictions.
    """
    spans: set[tuple[int, int, str]] = set()
    start: int | None = None
    open_type = ""
    for position, tag in enumerate(tags):
        prefix, entity_type = split_tag(tag)
        begins = prefix in ("B", "S") or (prefix in ("I", "E") and open_type != entity_type)
        if start is not None and (prefix == OUTSIDE or begins):
            spans.add((start, position, open_type))
            start = None
        if prefix == OUTSIDE:
            open_type = ""
            continue
        if begins or start is None:
            start = position
            open_type = entity_type
        if prefix in ("E", "S"):
            spans.add((start, position + 1, open_type))
            start = None
            open_type = ""
    if start is not None:
        spans.add((start, len(tags), open_type))
    return spans

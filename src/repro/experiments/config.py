"""Experiment configuration shared by the runner and the benchmarks."""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class ExperimentConfig:
    """One active-learning experiment's shape.

    Attributes
    ----------
    batch_size:
        Samples annotated per round (paper: 25 binary text, 100 TREC/NER).
    rounds:
        Strategy-driven rounds (paper: 20).
    initial_size:
        Random warm-start labeled set (defaults to ``batch_size``).
    repeats:
        Independent repetitions averaged into the reported curve (the
        paper averages over cross-validation folds / repeated runs).
    seed:
        Master seed; repetition ``r`` derives its own child stream.
    history_backend:
        :class:`~repro.core.history.HistoryStore` buffer backend for
        every cell's history ("local", "shared", or "mmap").  Backends
        are result-neutral — runs are byte-identical across them — so
        this is a deployment knob, not part of the experiment's
        identity.
    training_mode:
        ``"cold"`` (default) refits every round's model from scratch —
        byte-identical to historical behaviour.  ``"warm"`` resumes each
        round's fit from the previous round's parameters for model
        families that support it.  Unlike ``history_backend`` this *is*
        part of the experiment's identity: warm runs follow a different
        (faster) optimisation trajectory.
    track_flips:
        Record each round's predicted labels for the unlabeled pool in
        the history store, feeding the contradiction-rate metric.
        Prediction consumes no RNG, so curves are byte-identical either
        way — but the recorded artifacts differ, so this is part of the
        experiment's identity (and checkpoint fingerprint).
    """

    batch_size: int = 25
    rounds: int = 20
    initial_size: "int | None" = None
    repeats: int = 3
    seed: int = 7
    history_backend: str = "local"
    training_mode: str = "cold"
    track_flips: bool = False

    def __post_init__(self) -> None:
        from ..core.history import HISTORY_BACKENDS
        from ..core.session import TRAINING_MODES

        if self.training_mode not in TRAINING_MODES:
            raise ConfigurationError(
                f"training_mode must be one of {TRAINING_MODES}, "
                f"got {self.training_mode!r}"
            )
        if self.batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {self.rounds}")
        if self.repeats < 1:
            raise ConfigurationError(f"repeats must be >= 1, got {self.repeats}")
        if self.history_backend not in HISTORY_BACKENDS:
            raise ConfigurationError(
                f"history_backend must be one of {HISTORY_BACKENDS}, "
                f"got {self.history_backend!r}"
            )

    @property
    def labels_needed(self) -> int:
        """Pool size the experiment consumes."""
        initial = self.initial_size if self.initial_size is not None else self.batch_size
        return initial + self.rounds * self.batch_size

"""Per-cell checkpoints for interrupted comparison grids.

A comparison grid retrains the task model ``strategies * repeats *
(rounds + 1)`` times, so a crash near the end of ``run_comparison``
throws away hours of work.  This module snapshots every completed
``(strategy, repeat)`` cell to its own JSON file as it finishes — the
full :class:`~repro.core.loop.ALResult` audit trail: per-round records,
selection order, and the history store contents — so a restarted run can
load the finished cells and recompute only the missing ones, with
results byte-identical to an uninterrupted run.

Like :mod:`repro.persistence`, checkpoints are plain JSON (no pickle):
inspectable, diffable, and safe to load from an untrusted directory.
Every file carries a fingerprint of the run that wrote it (strategy
name, repeat index, cell seed, experiment configuration, and — for
spec-described runs — the resolved model and strategy specs); a
checkpoint whose fingerprint does not match the resuming run is *stale*
and is rejected with :class:`~repro.exceptions.CheckpointError` rather
than silently reused — resuming must never mix cells from different
experiments.  Embedding the specs makes each checkpoint self-describing
(the JSON alone says exactly which model and strategy produced it) and
lets staleness compare structured specs instead of repr strings.  Writes
go through :func:`repro.ioutil.atomic_write_text`, so a crash mid-write
can never leave a truncated document behind.

The ``final_model`` of a cell is deliberately not serialised: it is not
part of the aggregated comparison output, and keeping checkpoints
model-agnostic keeps them small and format-stable.  Resumed cells carry
``final_model=None``.

Beyond completed cells, the store also keeps *round-level session
snapshots* (``session_*.json``): the
:meth:`~repro.core.session.SessionEngine.snapshot` of a cell still in
flight, written after every committed round.  A resumed or retried run
restores the engine mid-cell instead of recomputing the finished rounds,
and the snapshot is discarded the moment its cell completes — only
in-flight cells ever have one on disk.  These snapshot documents persist
through a :class:`repro.service.store.JsonSessionStore` — the same
store contract the AL session service uses — so their on-disk handling
(atomic writes, corrupt-document detection) is defined once; the
envelope and fingerprint checks share the :mod:`repro.ioutil` helpers
with the session CLI and the service.
"""

from __future__ import annotations

import hashlib
import json
import re
from pathlib import Path

import numpy as np

from ..core.history import HistoryStore
from ..core.session import ALResult, record_from_dict, record_to_dict
from ..exceptions import CheckpointError, HistoryError, StoreError
from ..formats import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    SESSION_CHECKPOINT_FORMAT,
    SESSION_CHECKPOINT_VERSION,
)
from ..ioutil import atomic_write_text, check_fingerprint, validate_envelope
from ..service.store import JsonSessionStore
from .config import ExperimentConfig


def cell_stem(strategy: str, repeat: int) -> str:
    """Filesystem-safe identifier of one ``(strategy, repeat)`` cell.

    Strategy display names may contain characters that are unsafe in
    file names (``wshs:entropy``), so the name is slugged for
    readability and disambiguated with a short hash of the exact name.
    The same stem keys checkpoint files, session snapshots, and the
    distributed queue's cell tickets, so every artifact of one cell is
    greppable by one string.
    """
    digest = hashlib.sha1(strategy.encode("utf-8")).hexdigest()[:8]
    slug = re.sub(r"[^A-Za-z0-9._-]+", "-", strategy)[:40] or "strategy"
    return f"{slug}.{digest}_r{int(repeat)}"


# -- history store -----------------------------------------------------------


def history_to_dict(history: HistoryStore) -> dict:
    """Serialise a history store as per-round sparse (indices, scores) rows."""
    return history.to_dict()


def history_from_dict(payload: dict) -> HistoryStore:
    """Rebuild a history store by replaying the recorded rounds."""
    return HistoryStore.from_dict(payload)


# -- ALResult ----------------------------------------------------------------


def result_to_dict(result: ALResult) -> dict:
    """Serialise an :class:`ALResult` (``final_model`` is dropped)."""
    return {
        "strategy_name": result.strategy_name,
        "records": [record_to_dict(record) for record in result.records],
        "selection_order": [selected.tolist() for selected in result.selection_order],
        "history": history_to_dict(result.history),
    }


def result_from_dict(payload: dict) -> ALResult:
    """Rebuild an :class:`ALResult` written by :func:`result_to_dict`.

    Floats round-trip exactly through JSON (``repr`` serialisation), so
    curves and records compare byte-identical to the originals.
    """
    records = [record_from_dict(record) for record in payload["records"]]
    return ALResult(
        strategy_name=str(payload["strategy_name"]),
        records=records,
        history=history_from_dict(payload["history"]),
        final_model=None,
        selection_order=[
            np.asarray(selected, dtype=np.int64)
            for selected in payload["selection_order"]
        ],
    )


# -- the store ---------------------------------------------------------------


class CheckpointStore:
    """Directory of per-cell checkpoint files for one comparison run.

    Parameters
    ----------
    directory:
        Where cell files live; created (with parents) if missing.
    config:
        The run's :class:`ExperimentConfig`; its shape fields become part
        of every cell fingerprint so checkpoints from a differently
        configured run are detected as stale.
    model_spec, strategy_specs:
        The resolved :mod:`repro.specs` descriptions of the run's model
        and of each strategy (display name -> spec dict), when the run
        was spec-described.  They are embedded in every file (the
        checkpoint then states exactly which components produced it) and
        compared structurally on load; ``None`` (factory-described runs)
        keeps the old name-only fingerprint.
    scenario:
        The scenario fingerprint
        (:meth:`repro.specs.transforms.ScenarioSpec.fingerprint`) of the
        perturbations applied to the run's data, or ``None`` for an
        unperturbed run.  Part of every cell fingerprint: a checkpoint
        written under one perturbation must never satisfy a resume under
        another (or under none).  Identity scenarios fingerprint as
        ``None``, so their checkpoints stay byte-identical to
        scenario-free runs.
    """

    def __init__(
        self,
        directory: "str | Path",
        config: ExperimentConfig,
        model_spec: "dict | None" = None,
        strategy_specs: "dict[str, dict] | None" = None,
        scenario: "dict | None" = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        #: In-flight session snapshots persist through the generic
        #: session-store contract (atomic writes, corruption detection);
        #: ids are the ``session_<stem>`` file stems, so the layout on
        #: disk is unchanged.
        self._sessions = JsonSessionStore(self.directory)
        self._model_spec = model_spec
        self._strategy_specs = strategy_specs or {}
        self._scenario = scenario
        self._config_fingerprint = {
            "batch_size": config.batch_size,
            "rounds": config.rounds,
            "initial_size": config.initial_size,
            "repeats": config.repeats,
            "seed": config.seed,
            # Part of the fingerprint (unlike history_backend below):
            # warm runs follow a different optimisation trajectory, so a
            # cold checkpoint must not satisfy a warm run or vice versa.
            "training_mode": config.training_mode,
        }
        if config.track_flips:
            # Key present only when tracking, so fingerprints (and
            # checkpoint bytes) of non-tracking runs are unchanged.
            self._config_fingerprint["track_flips"] = True
        # Recorded in every payload for provenance, but deliberately NOT
        # part of the fingerprint: history backends are result-neutral
        # (byte-identical runs), so resuming under a different backend is
        # legal and must not invalidate existing checkpoints.
        self._history_backend = config.history_backend

    def _cell_specs(self, strategy: str) -> dict:
        """The spec fingerprint stored in (and expected of) a cell file."""
        return {
            "model": self._model_spec,
            "strategy": self._strategy_specs.get(strategy),
        }

    def _fingerprint(self, strategy: str, repeat: int, seed: int) -> dict:
        """The identity every document of one cell must carry to be fresh."""
        return {
            "strategy": strategy,
            "repeat": int(repeat),
            "seed": int(seed),
            "config": self._config_fingerprint,
            "specs": self._cell_specs(strategy),
            # Always part of the expected fingerprint (None when
            # unperturbed): fingerprint checks read absent payload keys
            # as None, so a perturbed checkpoint can never satisfy an
            # unperturbed resume or vice versa, while unperturbed
            # payloads keep their historical byte shape (no key).
            "scenario": self._scenario,
        }

    def cell_path(self, strategy: str, repeat: int) -> Path:
        """The checkpoint file for one ``(strategy, repeat)`` cell."""
        return self.directory / f"cell_{cell_stem(strategy, repeat)}.json"

    def save(self, strategy: str, repeat: int, seed: int, result: ALResult) -> Path:
        """Atomically write one completed cell; returns the file path."""
        payload = {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "strategy": strategy,
            "repeat": int(repeat),
            "seed": int(seed),
            "config": self._config_fingerprint,
            "history_backend": self._history_backend,
            "specs": self._cell_specs(strategy),
            "result": result_to_dict(result),
        }
        if self._scenario is not None:
            payload["scenario"] = self._scenario
        path = self.cell_path(strategy, repeat)
        atomic_write_text(path, json.dumps(payload))
        return path

    def load(self, strategy: str, repeat: int, seed: int) -> "ALResult | None":
        """Load one cell, or ``None`` when no checkpoint exists for it.

        Raises
        ------
        CheckpointError
            If the file exists but is unreadable, not a cell checkpoint,
            from an unsupported format version, or stale (its fingerprint
            does not match this run's strategy/repeat/seed/config).
        """
        path = self.cell_path(strategy, repeat)
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise CheckpointError(f"corrupt checkpoint {path}: {error}") from error
        if not isinstance(payload, dict) or payload.get("format") != CHECKPOINT_FORMAT:
            raise CheckpointError(f"{path} is not a comparison-cell checkpoint")
        if payload.get("version") != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version {payload.get('version')!r} in {path}"
            )
        check_fingerprint(
            payload,
            self._fingerprint(strategy, repeat, seed),
            CheckpointError,
            source=f"checkpoint {path}",
            hint="clear the checkpoint directory or rerun without resume",
        )
        try:
            return result_from_dict(payload["result"])
        except (KeyError, TypeError, ValueError, HistoryError) as error:
            raise CheckpointError(f"corrupt checkpoint {path}: {error}") from error

    # -- in-flight session snapshots -----------------------------------------

    def _session_id(self, strategy: str, repeat: int) -> str:
        """The cell's id in the session store.

        Prefixed ``session_`` so completed-cell bookkeeping (and
        anything globbing ``cell_*.json``) never mistakes an in-flight
        snapshot for a finished result.
        """
        return f"session_{cell_stem(strategy, repeat)}"

    def session_path(self, strategy: str, repeat: int) -> Path:
        """The round-level snapshot file of one in-flight cell."""
        return self._sessions.path(self._session_id(strategy, repeat))

    def save_session(
        self, strategy: str, repeat: int, seed: int, snapshot: dict
    ) -> Path:
        """Atomically write the in-flight snapshot of one cell."""
        payload = {
            "format": SESSION_CHECKPOINT_FORMAT,
            "version": SESSION_CHECKPOINT_VERSION,
            "strategy": strategy,
            "repeat": int(repeat),
            "seed": int(seed),
            "config": self._config_fingerprint,
            "history_backend": self._history_backend,
            "specs": self._cell_specs(strategy),
            "session": snapshot,
        }
        if self._scenario is not None:
            payload["scenario"] = self._scenario
        self._sessions.save(self._session_id(strategy, repeat), payload)
        return self.session_path(strategy, repeat)

    def load_session(self, strategy: str, repeat: int, seed: int) -> "dict | None":
        """The cell's mid-run session snapshot, or ``None`` if absent.

        Raises
        ------
        CheckpointError
            If the file exists but is unreadable, not a session
            snapshot, from an unsupported version, or written by a
            differently fingerprinted run.
        """
        path = self.session_path(strategy, repeat)
        try:
            row = self._sessions.load(self._session_id(strategy, repeat))
        except StoreError as error:
            raise CheckpointError(
                f"corrupt session snapshot {path}: {error}"
            ) from error
        if row is None:
            return None
        payload = validate_envelope(
            row.document,
            SESSION_CHECKPOINT_FORMAT,
            SESSION_CHECKPOINT_VERSION,
            CheckpointError,
            source=f"session snapshot {path}",
        )
        check_fingerprint(
            payload,
            self._fingerprint(strategy, repeat, seed),
            CheckpointError,
            source=f"session snapshot {path}",
            hint="clear the checkpoint directory or rerun without resume",
        )
        session = payload.get("session")
        if not isinstance(session, dict):
            raise CheckpointError(f"corrupt session snapshot {path}: no session")
        return session

    def discard_session(self, strategy: str, repeat: int) -> None:
        """Remove the cell's in-flight snapshot once the cell completes."""
        self._sessions.delete(self._session_id(strategy, repeat))

"""ASCII rendering of the paper's tables and figure series.

The benchmarks print their reproduced numbers with these helpers so the
output can be compared side by side with the paper (EXPERIMENTS.md keeps
the paper-vs-measured record).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from ..eval.curves import LearningCurve, samples_to_target
from ..exceptions import ConfigurationError


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Fixed-width ASCII table; floats rendered with 4 decimals."""
    if not headers:
        raise ConfigurationError("table needs headers")

    def render(cell: object) -> str:
        if cell is None:
            return "-"
        if isinstance(cell, float) or isinstance(cell, np.floating):
            # Missing measurements travel as NaN (e.g. a metric that does
            # not apply to a strategy); render them as "-" like None.
            return "-" if np.isnan(cell) else f"{cell:.4f}"
        return str(cell)

    text_rows = [[render(cell) for cell in row] for row in rows]
    for row in text_rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row has {len(row)} cells for {len(headers)} headers"
            )
    widths = [
        max(len(headers[col]), *(len(r[col]) for r in text_rows)) if text_rows else len(headers[col])
        for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(separator)
    for row in text_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_curve_table(
    curves: "Mapping[str, LearningCurve]",
    counts: "Sequence[int] | None" = None,
    title: str = "",
) -> str:
    """Learning curves as a table: one row per strategy, one column per count."""
    if not curves:
        raise ConfigurationError("no curves to format")
    first = next(iter(curves.values()))
    checkpoint_counts = list(counts) if counts is not None else first.counts.tolist()
    headers = ["strategy"] + [str(c) for c in checkpoint_counts]
    rows = []
    for name, curve in curves.items():
        rows.append([name] + [curve.value_at(int(c)) for c in checkpoint_counts])
    return format_table(headers, rows, title=title)


def format_metric_table(
    metrics: "Mapping[str, Mapping[str, float]]",
    title: str = "",
) -> str:
    """One experiment's metric matrix: strategies as rows, metrics as columns.

    ``metrics`` is the ``{metric_label: {strategy: value}}`` mapping a
    :class:`~repro.eval.pipeline.MetricPipeline` computes.  NaN cells
    (inapplicable metrics) render as ``-``.
    """
    if not metrics:
        raise ConfigurationError("no metrics to format")
    labels = list(metrics)
    strategies: list[str] = []
    for per_strategy in metrics.values():
        for name in per_strategy:
            if name not in strategies:
                strategies.append(name)
    headers = ["strategy"] + labels
    rows = [
        [name] + [metrics[label].get(name) for label in labels]
        for name in strategies
    ]
    return format_table(headers, rows, title=title)


def format_sweep_matrix(
    values: "Sequence[Sequence[object]]",
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    corner: str = "cell",
    title: str = "",
) -> str:
    """A sweep grid for one (metric, strategy): rows x columns of cells.

    ``values[i][j]`` is the measurement for row cell ``i`` and column
    cell ``j``; ``None``/NaN (cells that failed or were skipped) render
    as ``-``.
    """
    if not row_labels or not col_labels:
        raise ConfigurationError("sweep matrix needs row and column labels")
    if len(values) != len(row_labels):
        raise ConfigurationError(
            f"sweep matrix has {len(values)} rows for {len(row_labels)} labels"
        )
    headers = [corner] + [str(label) for label in col_labels]
    rows = [
        [str(label)] + list(row) for label, row in zip(row_labels, values)
    ]
    return format_table(headers, rows, title=title)


def format_phase_times(
    phase_totals: "Mapping[str, Mapping[str, float]]",
    title: str = "",
) -> str:
    """Per-strategy wall-time totals of the engine's phases.

    ``phase_totals`` maps strategy name to accumulated seconds per phase
    (``train`` / ``evaluate`` / ``propose`` / ``ingest``), as summed from
    the per-round :attr:`~repro.core.session.RoundRecord.timings`.
    Strategies without timing data (snapshot-restored rounds) are the
    caller's responsibility to drop.
    """
    if not phase_totals:
        raise ConfigurationError("no phase timings to format")
    phases = ["train", "evaluate", "propose", "ingest"]
    headers = ["strategy"] + [f"{p} (s)" for p in phases] + ["total (s)"]
    rows = []
    for name, totals in phase_totals.items():
        per_phase = [float(totals.get(p, 0.0)) for p in phases]
        rows.append([name] + per_phase + [sum(per_phase)])
    return format_table(headers, rows, title=title)


def accumulate_phase_times(records: Sequence) -> "dict[str, float] | None":
    """Sum one run's per-round phase timings; ``None`` if none recorded."""
    totals: dict[str, float] = {}
    seen = False
    for record in records:
        timings = getattr(record, "timings", None)
        if not timings:
            continue
        seen = True
        for phase, seconds in timings.items():
            totals[phase] = totals.get(phase, 0.0) + float(seconds)
    return totals if seen else None


def format_target_table(
    curves: "Mapping[str, LearningCurve]",
    targets: Sequence[float],
    budget: "int | None" = None,
    title: str = "",
) -> str:
    """Table 5 format: annotations needed per strategy to reach each target.

    Unreached targets render as ``"<budget>+"`` (e.g. ``500+``), matching
    the paper's notation.
    """
    if not targets:
        raise ConfigurationError("no targets given")
    headers = ["strategy"] + [f"acc>={t}" for t in targets]
    rows = []
    for name, curve in curves.items():
        cells: list[object] = [name]
        limit = budget if budget is not None else int(curve.counts[-1])
        for target in targets:
            needed = samples_to_target(curve, target)
            cells.append(str(needed) if needed is not None else f"{limit}+")
        rows.append(cells)
    return format_table(headers, rows, title=title)

"""Seeded multi-repeat experiment runner.

Runs a set of strategies over the same dataset/model with matched seeds
(repetition ``r`` of every strategy shares the same initial labeled set),
so differences between strategies are not confounded by different random
starts — the comparison protocol the paper's averaged curves imply.

Every (strategy, repeat) cell is an independent, fully seeded computation,
so the grid can be fanned out across a process pool (``n_jobs > 1``)
without changing a single byte of the results: each worker runs the same
``SessionEngine`` the serial path would, and the results are reassembled
in input order regardless of completion order.  Model and strategies may
be given as factories (closures; fork-started pools only) or as
:mod:`repro.specs` specs — pure data that pickles — in which case the
pool also works under the ``spawn`` start method and checkpoints embed
the specs that produced them.

The grid is also fault tolerant.  Completed cells can be checkpointed to
a directory as they finish (``checkpoint_dir``) and skipped on restart;
failing cells are retried up to :class:`RetryPolicy` bounds; a worker
process dying (OOM kill, segfault — surfacing as ``BrokenProcessPool``)
resubmits the lost cells to a fresh pool instead of aborting the grid;
and ``on_error="skip"`` degrades gracefully, aggregating the surviving
repeats and attaching a per-cell failure log to each
:class:`StrategyResult` instead of raising.
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
import multiprocessing
import time
from collections.abc import Callable, Mapping
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from functools import partial

import numpy as np

from ..core.session import ALResult, SessionEngine, run_to_completion
from ..eval.curves import LearningCurve, curve_std, mean_curve
from ..exceptions import ConfigurationError, ExecutionError
from ..rng import ensure_rng
from ..specs.core import as_spec, is_spec_like
from ..specs.models import build_model
from ..specs.strategies import build_strategy
from .checkpoint import CheckpointStore
from .config import ExperimentConfig

StrategyFactory = Callable[[], object]

#: Start methods :func:`run_comparison` accepts for its worker pool.
_START_METHODS = ("fork", "spawn")

#: Recognised partial-failure handling modes of :func:`run_comparison`.
_ON_ERROR_MODES = ("raise", "skip")


@dataclass(frozen=True)
class RetryPolicy:
    """Retry budget and pacing for failing (strategy, repeat) cells.

    Attributes
    ----------
    max_attempts:
        Total attempts per cell, including the first; ``1`` disables
        retries.  The same bound limits consecutive *unproductive* pool
        rebuilds after worker deaths: when a broken pool is rebuilt
        ``max_attempts`` times without a single cell completing, the
        still-pending cells are treated as permanently failed (worker
        deaths cannot be attributed to one cell, so they are bounded by
        progress rather than counted per cell).
    backoff:
        Base delay in seconds before the second attempt of a cell.
        ``0.0`` (the default) keeps the historical immediate-retry
        behaviour.  Subsequent attempts wait exponentially longer
        (``backoff * backoff_factor ** (failures - 1)``), capped at
        ``max_delay``.
    backoff_factor:
        Multiplier between consecutive delays (must be >= 1).
    max_delay:
        Upper bound on any single delay, in seconds.
    jitter:
        Fraction of each delay that is randomised *deterministically*
        from the cell's identity and attempt number, in ``[0, 1]``.  A
        delay ``d`` becomes a value in ``[d * (1 - jitter), d]``, the
        same value on every host for the same cell — retries de-herd
        without introducing nondeterminism into test runs.
    """

    max_attempts: int = 1
    backoff: float = 0.0
    backoff_factor: float = 2.0
    max_delay: float = 60.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff < 0:
            raise ConfigurationError(f"backoff must be >= 0, got {self.backoff}")
        if self.backoff_factor < 1:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.max_delay < 0:
            raise ConfigurationError(f"max_delay must be >= 0, got {self.max_delay}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )

    def delay(self, failures: int, key: str = "") -> float:
        """Seconds to wait before the attempt following ``failures`` failures.

        Deterministic: the jitter fraction is derived from a hash of
        ``(key, failures)``, so the same cell waits the same time on
        every host and every rerun, while different cells spread out.
        """
        if self.backoff <= 0 or failures < 1:
            return 0.0
        raw = self.backoff * self.backoff_factor ** (failures - 1)
        delay = min(self.max_delay, raw)
        if self.jitter > 0:
            digest = hashlib.sha256(f"{key}:{failures}".encode("utf-8")).digest()
            fraction = int.from_bytes(digest[:8], "big") / 2**64
            delay *= 1.0 - self.jitter * fraction
        return delay


@dataclass(frozen=True)
class CellFailure:
    """Audit record of one permanently failed (strategy, repeat) cell."""

    strategy: str
    repeat: int
    attempts: int
    error: str


@dataclass
class StrategyResult:
    """Aggregated outcome of one strategy across repeats.

    ``runs`` holds the successful repeats only (all of them unless the
    grid ran with ``on_error="skip"`` and some cells failed); ``curve``
    and ``std`` aggregate exactly those runs.  ``failures`` is the audit
    log of the repeats that were dropped.
    """

    name: str
    curve: LearningCurve
    std: np.ndarray
    runs: list[ALResult]
    failures: list[CellFailure] = field(default_factory=list)


#: Shared per-worker state, installed by :func:`_set_pool_state` (the
#: pool initializer) in every worker before it takes cells; only
#: (strategy_index, repeat, seed) crosses the boundary per task.  Under
#: ``fork`` the initargs are inherited by reference, so closure factories
#: still work; under ``spawn`` they are pickled, which is exactly what
#: spec-built factories (plain data + module-level builders) allow.
_POOL_STATE: tuple | None = None


def _set_pool_state(state: tuple) -> None:
    """Pool-worker initializer: install the shared cell-building state."""
    global _POOL_STATE
    _POOL_STATE = state


def _factory_from_spec(builder: Callable[[dict], object], spec: dict) -> Callable[[], object]:
    """A picklable zero-arg factory equivalent to ``lambda: builder(spec)``."""
    return partial(builder, spec)


def _normalise_components(
    model_factory, strategy_factories: "Mapping[str, object]"
) -> tuple[Callable[[], object], dict, "dict | None", "dict[str, dict] | None"]:
    """Accept factories *or* specs for the model and each strategy.

    Returns ``(model_factory, factories_by_name, model_spec,
    strategy_specs)`` where the factories are zero-arg callables (spec
    inputs become picklable partials over the spec builders) and the
    spec dicts are ``None`` unless *every* component was given as a spec
    — only then is the grid fully data-described (spawn-safe workers,
    spec-fingerprinted checkpoints).
    """
    model_spec = None
    if is_spec_like(model_factory):
        model_spec = as_spec(model_factory).to_dict()
        model_factory = _factory_from_spec(build_model, model_spec)
    elif not callable(model_factory):
        raise ConfigurationError(
            f"model_factory must be a zero-arg callable or a model spec, "
            f"got {type(model_factory).__name__}"
        )
    factories: dict[str, Callable[[], object]] = {}
    strategy_specs: dict[str, dict] = {}
    for name, value in strategy_factories.items():
        if is_spec_like(value):
            spec = as_spec(value).to_dict()
            strategy_specs[name] = spec
            factories[name] = _factory_from_spec(build_strategy, spec)
        elif callable(value):
            factories[name] = value
        else:
            raise ConfigurationError(
                f"strategy {name!r} must be a zero-arg factory or a "
                f"strategy spec, got {type(value).__name__}"
            )
    fully_specced = model_spec is not None and len(strategy_specs) == len(factories)
    return (
        model_factory,
        factories,
        model_spec if fully_specced else None,
        strategy_specs if fully_specced else None,
    )


def _resolve_start_method(start_method: "str | None", spec_mode: bool) -> "str | None":
    """Pick the pool start method; ``None`` means fall back to serial.

    Auto-selection (``start_method=None``) prefers ``fork`` (cheapest,
    works with closure factories) and falls back to ``spawn`` when the
    platform lacks fork *and* every component was supplied as a spec —
    a spec-described grid ships only data to the workers, so spawn is
    byte-identical to fork and serial.
    """
    available = multiprocessing.get_all_start_methods()
    if start_method is not None:
        if start_method not in _START_METHODS:
            raise ConfigurationError(
                f"start_method must be one of {_START_METHODS}, "
                f"got {start_method!r}"
            )
        if start_method not in available:
            raise ConfigurationError(
                f"start method {start_method!r} is unavailable on this "
                f"platform (available: {available})"
            )
        return start_method
    if "fork" in available:
        return "fork"
    if spec_mode and "spawn" in available:
        return "spawn"
    return None


def grid_repeat_seeds(config: ExperimentConfig) -> np.ndarray:
    """The grid's per-repeat cell seeds (derived from ``config.seed``).

    Repetition ``r`` of *every* strategy shares seed ``r`` — the
    matched-seed protocol.  The distributed coordinator materializes the
    same seeds into its cell tickets, which is what makes a distributed
    grid byte-identical to :func:`run_comparison`.
    """
    return ensure_rng(config.seed).integers(0, 2**63 - 1, size=config.repeats)


def _run_cell(
    model_factory: Callable[[], object],
    strategy_factory: StrategyFactory,
    train_dataset,
    test_dataset,
    config: ExperimentConfig,
    metric,
    seed: int,
    store: "CheckpointStore | None" = None,
    strategy_name: "str | None" = None,
    repeat: int = 0,
) -> ALResult:
    """Run one (strategy, repeat) cell of the comparison grid.

    With a checkpoint ``store`` attached, the engine's round-level
    snapshot is written after every committed round, and an existing
    snapshot for this cell (left behind by a crash or a failed attempt)
    is restored instead of recomputing the finished rounds.  Resuming is
    byte-identical to running the cell uninterrupted, so a resumed retry
    is indistinguishable from a first-attempt success.
    """
    snapshot = None
    if store is not None:
        snapshot = store.load_session(strategy_name, repeat, int(seed))
    if snapshot is not None:
        engine = SessionEngine.restore(
            snapshot,
            model_factory(),
            strategy_factory(),
            train_dataset,
            test_dataset,
            metric=metric,
            history_backend=config.history_backend,
        )
    else:
        engine = SessionEngine(
            model_factory(),
            strategy_factory(),
            train_dataset,
            test_dataset,
            batch_size=config.batch_size,
            rounds=config.rounds,
            initial_size=config.initial_size,
            metric=metric,
            seed_or_rng=int(seed),
            history_backend=config.history_backend,
            training_mode=config.training_mode,
            track_flips=config.track_flips,
        )
    on_round_committed = None
    if store is not None:
        on_round_committed = lambda e: store.save_session(  # noqa: E731
            strategy_name, repeat, int(seed), e.snapshot()
        )
    return run_to_completion(engine, on_round_committed=on_round_committed)


def _run_cell_from_state(strategy_index: int, repeat: int, seed: int) -> ALResult:
    """Pool-worker entry point: look the cell up in the inherited state."""
    (
        model_factory,
        factories,
        train_dataset,
        test_dataset,
        config,
        metric,
        store,
        names,
    ) = _POOL_STATE
    return _run_cell(
        model_factory,
        factories[strategy_index],
        train_dataset,
        test_dataset,
        config,
        metric,
        seed,
        store=store,
        strategy_name=names[strategy_index] if names else None,
        repeat=repeat,
    )


class _CellGrid:
    """Bookkeeping for one grid execution: pending cells, retries, results.

    A *cell* is a ``(strategy_index, repeat_index)`` tuple.  Cells move
    from ``pending`` to either ``results`` (success, checkpointed if a
    store is attached) or ``failures`` (permanent failure under
    ``on_error="skip"``); under ``on_error="raise"`` a permanent failure
    raises :class:`ExecutionError` instead.
    """

    def __init__(
        self,
        names: list[str],
        repeat_seeds: np.ndarray,
        policy: RetryPolicy,
        on_error: str,
        store: "CheckpointStore | None",
    ) -> None:
        self.names = names
        self.repeat_seeds = repeat_seeds
        self.policy = policy
        self.on_error = on_error
        self.store = store
        self.pending: list[tuple[int, int]] = [
            (strategy_index, repeat_index)
            for strategy_index in range(len(names))
            for repeat_index in range(len(repeat_seeds))
        ]
        self.results: dict[tuple[int, int], ALResult] = {}
        self.failures: dict[tuple[int, int], CellFailure] = {}
        self.attempts: dict[tuple[int, int], int] = {}

    def describe(self, cell: "tuple[int, int]") -> str:
        return f"({self.names[cell[0]]!r}, repeat {cell[1]})"

    def retry_delay(self, cell: "tuple[int, int]") -> float:
        """Backoff before this cell's next attempt (0.0 = retry now)."""
        return self.policy.delay(
            self.attempts.get(cell, 0), key=f"{self.names[cell[0]]}:{cell[1]}"
        )

    def cell_seed(self, cell: "tuple[int, int]") -> int:
        return int(self.repeat_seeds[cell[1]])

    def resume(self) -> None:
        """Load already-completed cells from the checkpoint store."""
        if self.store is None:
            return
        for cell in list(self.pending):
            loaded = self.store.load(
                self.names[cell[0]], cell[1], self.cell_seed(cell)
            )
            if loaded is not None:
                self.results[cell] = loaded
                self.pending.remove(cell)
                self.store.discard_session(self.names[cell[0]], cell[1])

    def drop_stale_sessions(self) -> None:
        """Discard leftover mid-cell snapshots of every pending cell.

        Called when ``resume=False``: snapshots from a previous run must
        not leak into a run that explicitly asked to start over.
        """
        if self.store is None:
            return
        for cell in self.pending:
            self.store.discard_session(self.names[cell[0]], cell[1])

    def record_success(self, cell: "tuple[int, int]", result: ALResult) -> None:
        self.results[cell] = result
        self.pending.remove(cell)
        if self.store is not None:
            self.store.save(self.names[cell[0]], cell[1], self.cell_seed(cell), result)
            self.store.discard_session(self.names[cell[0]], cell[1])

    def record_error(self, cell: "tuple[int, int]", error: Exception) -> bool:
        """Count one failed attempt; True if the cell should be retried.

        Raises
        ------
        ExecutionError
            When the retry budget is exhausted and ``on_error="raise"``.
        """
        attempts = self.attempts.get(cell, 0) + 1
        self.attempts[cell] = attempts
        if attempts < self.policy.max_attempts:
            return True
        message = (
            f"cell {self.describe(cell)} failed after {attempts} "
            f"attempt{'s' if attempts != 1 else ''}: {error}"
        )
        if self.on_error == "raise":
            raise ExecutionError(message) from error
        self.failures[cell] = CellFailure(
            strategy=self.names[cell[0]],
            repeat=cell[1],
            attempts=attempts,
            error=f"{type(error).__name__}: {error}",
        )
        self.pending.remove(cell)
        return False

    def record_lost_cells(self, rebuilds: int) -> None:
        """Settle the cells still pending after too many broken pools."""
        lost = list(self.pending)
        message = (
            f"worker pool kept breaking ({rebuilds} consecutive rebuilds with "
            f"no completed cell); lost cells: "
            + ", ".join(self.describe(cell) for cell in lost)
        )
        if self.on_error == "raise":
            raise ExecutionError(message)
        for cell in lost:
            self.failures[cell] = CellFailure(
                strategy=self.names[cell[0]],
                repeat=cell[1],
                attempts=self.attempts.get(cell, 0),
                error="worker process died (BrokenProcessPool)",
            )
            self.pending.remove(cell)


def _run_serial(
    grid: _CellGrid,
    model_factory,
    factories,
    train_dataset,
    test_dataset,
    config,
    metric,
) -> None:
    """In-process execution with per-cell retry.

    A retry of a cell whose engine snapshotted committed rounds resumes
    from the last snapshot rather than recomputing them.  Retries wait
    out the policy's (jittered, deterministic) backoff first.
    """
    for cell in list(grid.pending):
        while True:
            try:
                result = _run_cell(
                    model_factory,
                    factories[cell[0]],
                    train_dataset,
                    test_dataset,
                    config,
                    metric,
                    grid.cell_seed(cell),
                    store=grid.store,
                    strategy_name=grid.names[cell[0]],
                    repeat=cell[1],
                )
            except Exception as error:
                if grid.record_error(cell, error):
                    delay = grid.retry_delay(cell)
                    if delay > 0:
                        time.sleep(delay)
                    continue
                break
            grid.record_success(cell, result)
            break


def _run_pool(grid: _CellGrid, n_jobs: int, start_method: str, state: tuple) -> None:
    """Process-pool execution with retry and broken-pool resubmission.

    Each iteration of the outer loop owns one pool.  Cells that raise
    *inside* a worker are retried on the same pool; when the pool itself
    breaks (a worker died), the not-yet-settled cells are resubmitted to
    a fresh pool.  Consecutive rebuilds that settle nothing are bounded
    by the retry policy, so a cell that reliably kills its worker cannot
    rebuild pools forever.  On any fatal error the outstanding futures
    are cancelled so no workers are left running stranded cells.

    ``state`` is installed in every worker by the pool initializer:
    inherited by reference under ``fork``, pickled under ``spawn``.
    """
    context = multiprocessing.get_context(start_method)
    unproductive_rebuilds = 0
    while grid.pending:
        pending_before = len(grid.pending)
        pool = ProcessPoolExecutor(
            max_workers=min(n_jobs, pending_before),
            mp_context=context,
            initializer=_set_pool_state,
            initargs=(state,),
        )
        futures: dict = {}
        # Retries under a backoff policy are parked here as
        # (eligible_at, tiebreak, cell) and submitted once due, so one
        # flapping cell never blocks the dispatcher or the other cells.
        deferred: list[tuple[float, int, tuple[int, int]]] = []
        defer_order = itertools.count()
        try:
            for cell in grid.pending:
                futures[
                    pool.submit(
                        _run_cell_from_state, cell[0], cell[1], grid.cell_seed(cell)
                    )
                ] = cell
            outstanding = set(futures)
            broke = False
            while (outstanding or deferred) and not broke:
                now = time.monotonic()
                while deferred and deferred[0][0] <= now:
                    _, _, cell = heapq.heappop(deferred)
                    try:
                        retry = pool.submit(
                            _run_cell_from_state,
                            cell[0],
                            cell[1],
                            grid.cell_seed(cell),
                        )
                    except BrokenProcessPool:
                        broke = True
                        break
                    futures[retry] = cell
                    outstanding.add(retry)
                if broke:
                    break
                timeout = max(0.0, deferred[0][0] - now) if deferred else None
                if not outstanding:
                    time.sleep(timeout or 0.0)
                    continue
                done, outstanding = wait(
                    outstanding, timeout=timeout, return_when=FIRST_COMPLETED
                )
                for future in done:
                    cell = futures[future]
                    try:
                        result = future.result()
                    except BrokenProcessPool:
                        broke = True
                    except Exception as error:  # raised inside the worker
                        if grid.record_error(cell, error):
                            delay = grid.retry_delay(cell)
                            if delay > 0:
                                heapq.heappush(
                                    deferred,
                                    (
                                        time.monotonic() + delay,
                                        next(defer_order),
                                        cell,
                                    ),
                                )
                                continue
                            try:
                                retry = pool.submit(
                                    _run_cell_from_state,
                                    cell[0],
                                    cell[1],
                                    grid.cell_seed(cell),
                                )
                            except BrokenProcessPool:
                                broke = True
                            else:
                                futures[retry] = cell
                                outstanding.add(retry)
                    else:
                        grid.record_success(cell, result)
        except BaseException:
            for future in futures:
                future.cancel()
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        pool.shutdown(wait=True)
        if not grid.pending:
            return
        # Reaching here means the pool broke mid-grid: the still-pending
        # cells were lost with their workers.  Rebuild and resubmit, but
        # only as long as pools keep making progress.
        if len(grid.pending) < pending_before:
            unproductive_rebuilds = 0
        else:
            unproductive_rebuilds += 1
        if unproductive_rebuilds >= grid.policy.max_attempts:
            grid.record_lost_cells(unproductive_rebuilds)
            return


def run_comparison(
    model_factory: "Callable[[], object] | Mapping | object",
    strategy_factories: "Mapping[str, StrategyFactory | Mapping]",
    train_dataset,
    test_dataset,
    config: ExperimentConfig | None = None,
    metric: "Callable[[object, object], float] | None" = None,
    n_jobs: int = 1,
    checkpoint_dir: "str | None" = None,
    resume: bool = True,
    retry: "RetryPolicy | None" = None,
    on_error: str = "raise",
    start_method: "str | None" = None,
    scenario: "dict | None" = None,
) -> dict[str, StrategyResult]:
    """Run every strategy ``config.repeats`` times and average the curves.

    Parameters
    ----------
    model_factory:
        Zero-argument callable producing a fresh unfitted model, or a
        model :class:`~repro.specs.core.Spec` (or its dict form) naming
        a registered model kind.
    strategy_factories:
        Mapping from display name to a zero-argument strategy factory
        (factories, not instances: history-aware strategies are stateful
        per run) or to a strategy spec.  When the model *and* every
        strategy are given as specs the grid is fully data-described:
        checkpoints embed the specs and the worker pool can use the
        ``spawn`` start method.
    n_jobs:
        Worker processes for the (strategy, repeat) grid.  ``1`` (the
        default) runs serially in-process.  Higher values fan the cells
        out over a process pool; because every cell is seeded
        independently and results are reassembled in input order, the
        output is byte-identical to the serial run regardless of the
        start method.  Without an explicit ``start_method`` the runner
        prefers ``fork``, falls back to ``spawn`` on fork-less platforms
        when the grid is spec-described, and otherwise degrades to
        serial execution (same results, no speedup).
    start_method:
        Force the pool start method (``"fork"`` or ``"spawn"``).
        ``spawn`` pickles the shared state instead of inheriting it, so
        it needs spec-described (or otherwise picklable) components,
        datasets, metric, and factories.
    checkpoint_dir:
        When set, every completed cell is written to this directory as a
        JSON checkpoint the moment it finishes (atomically — a crash
        mid-write never leaves a corrupt file), and with ``resume=True``
        cells already checkpointed by a previous identically-configured
        run are loaded instead of recomputed.  In-flight cells
        additionally snapshot their session after every committed round
        (``session_*.json``), so a crash *inside* a cell resumes from
        the last finished round rather than round zero; the snapshot is
        deleted when its cell completes.  A resumed grid produces
        results byte-identical to an uninterrupted run.
    resume:
        Whether to reuse existing checkpoints in ``checkpoint_dir``.
        With ``False``, existing cell files are ignored and overwritten.
        Checkpoints whose fingerprint does not match this run raise
        :class:`~repro.exceptions.CheckpointError` rather than being
        silently reused.
    retry:
        Per-cell retry budget (default: no retries).  Retrying reruns
        the whole cell from its seed, so a successful retry is
        indistinguishable from a first-attempt success.
    on_error:
        ``"raise"`` (default) aborts the grid on the first permanently
        failed cell, cancelling outstanding work.  ``"skip"`` drops the
        failed cells, aggregates each strategy over its surviving
        repeats, and records the failures on
        :attr:`StrategyResult.failures`.  A strategy whose repeats *all*
        failed still raises — there is nothing left to aggregate.

    Returns
    -------
    dict
        Display name -> :class:`StrategyResult`, in input order.
    """
    if not strategy_factories:
        raise ConfigurationError("no strategies to compare")
    if n_jobs < 1:
        raise ConfigurationError(f"n_jobs must be >= 1, got {n_jobs}")
    if on_error not in _ON_ERROR_MODES:
        raise ConfigurationError(
            f"on_error must be one of {_ON_ERROR_MODES}, got {on_error!r}"
        )
    config = config or ExperimentConfig()
    needed = config.labels_needed
    if needed > len(train_dataset):
        raise ConfigurationError(
            f"experiment needs {needed} pool samples (initial_size + "
            f"rounds * batch_size) but train_dataset has only "
            f"{len(train_dataset)}; shrink rounds/batch_size or enlarge "
            "the pool"
        )
    model_factory, factories_by_name, model_spec, strategy_specs = (
        _normalise_components(model_factory, strategy_factories)
    )
    repeat_seeds = grid_repeat_seeds(config)
    names = list(factories_by_name)
    factories = [factories_by_name[name] for name in names]
    store = (
        CheckpointStore(
            checkpoint_dir,
            config,
            model_spec=model_spec,
            strategy_specs=strategy_specs,
            # Scenario fingerprint of the (already perturbed) datasets:
            # checkpoints written under a different perturbation are
            # stale, not reusable.
            scenario=scenario,
        )
        if checkpoint_dir
        else None
    )

    grid = _CellGrid(names, repeat_seeds, retry or RetryPolicy(), on_error, store)
    if resume:
        grid.resume()
    else:
        grid.drop_stale_sessions()

    resolved_start = _resolve_start_method(start_method, spec_mode=model_spec is not None)
    if n_jobs > 1 and len(grid.pending) > 1 and resolved_start is not None:
        state = (
            model_factory,
            factories,
            train_dataset,
            test_dataset,
            config,
            metric,
            store,
            names,
        )
        _run_pool(grid, n_jobs, resolved_start, state)
    else:
        _run_serial(
            grid, model_factory, factories, train_dataset, test_dataset, config, metric
        )

    return aggregate_strategy_results(names, config.repeats, grid.results, grid.failures)


def aggregate_strategy_results(
    names: "list[str]",
    repeats: int,
    cell_results: "Mapping[tuple[int, int], ALResult]",
    cell_failures: "Mapping[tuple[int, int], CellFailure]",
) -> dict[str, StrategyResult]:
    """Fold per-cell outcomes into per-strategy aggregates, in input order.

    Shared by :func:`run_comparison` and the distributed coordinator:
    both settle every ``(strategy_index, repeat_index)`` cell into either
    an :class:`~repro.core.session.ALResult` or a :class:`CellFailure`,
    and aggregation is where the two execution paths must converge to
    the exact same curves.

    Raises
    ------
    ExecutionError
        When every repeat of some strategy failed — there is nothing
        left to aggregate for it.
    """
    results: dict[str, StrategyResult] = {}
    for strategy_index, name in enumerate(names):
        runs = [
            cell_results[(strategy_index, repeat_index)]
            for repeat_index in range(repeats)
            if (strategy_index, repeat_index) in cell_results
        ]
        strategy_failures = [
            cell_failures[cell]
            for cell in sorted(cell_failures)
            if cell[0] == strategy_index
        ]
        if not runs:
            raise ExecutionError(
                f"all {repeats} repeats of strategy {name!r} failed; "
                "nothing to aggregate"
            )
        curves = [run.curve(label=name) for run in runs]
        results[name] = StrategyResult(
            name=name,
            curve=mean_curve(curves, label=name),
            std=curve_std(curves),
            runs=runs,
            failures=strategy_failures,
        )
    return results

"""Seeded multi-repeat experiment runner.

Runs a set of strategies over the same dataset/model with matched seeds
(repetition ``r`` of every strategy shares the same initial labeled set),
so differences between strategies are not confounded by different random
starts — the comparison protocol the paper's averaged curves imply.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass

import numpy as np

from ..core.loop import ActiveLearningLoop, ALResult
from ..eval.curves import LearningCurve, curve_std, mean_curve
from ..exceptions import ConfigurationError
from ..rng import ensure_rng
from .config import ExperimentConfig

StrategyFactory = Callable[[], object]


@dataclass
class StrategyResult:
    """Aggregated outcome of one strategy across repeats."""

    name: str
    curve: LearningCurve
    std: np.ndarray
    runs: list[ALResult]


def run_comparison(
    model_factory: Callable[[], object],
    strategy_factories: "Mapping[str, StrategyFactory]",
    train_dataset,
    test_dataset,
    config: ExperimentConfig | None = None,
    metric: "Callable[[object, object], float] | None" = None,
) -> dict[str, StrategyResult]:
    """Run every strategy ``config.repeats`` times and average the curves.

    Parameters
    ----------
    model_factory:
        Zero-argument callable producing a fresh unfitted model.
    strategy_factories:
        Mapping from display name to a zero-argument strategy factory
        (factories, not instances: history-aware strategies are stateful
        per run).

    Returns
    -------
    dict
        Display name -> :class:`StrategyResult`, in input order.
    """
    if not strategy_factories:
        raise ConfigurationError("no strategies to compare")
    config = config or ExperimentConfig()
    repeat_seeds = ensure_rng(config.seed).integers(0, 2**63 - 1, size=config.repeats)
    results: dict[str, StrategyResult] = {}
    for name, factory in strategy_factories.items():
        runs: list[ALResult] = []
        for repeat, seed in enumerate(repeat_seeds):
            loop = ActiveLearningLoop(
                model_prototype=model_factory(),
                strategy=factory(),
                train_dataset=train_dataset,
                test_dataset=test_dataset,
                batch_size=config.batch_size,
                rounds=config.rounds,
                initial_size=config.initial_size,
                metric=metric,
                seed_or_rng=int(seed),
            )
            runs.append(loop.run())
        curves = [run.curve(label=name) for run in runs]
        results[name] = StrategyResult(
            name=name,
            curve=mean_curve(curves, label=name),
            std=curve_std(curves),
            runs=runs,
        )
    return results

"""Seeded multi-repeat experiment runner.

Runs a set of strategies over the same dataset/model with matched seeds
(repetition ``r`` of every strategy shares the same initial labeled set),
so differences between strategies are not confounded by different random
starts — the comparison protocol the paper's averaged curves imply.

Every (strategy, repeat) cell is an independent, fully seeded computation,
so the grid can be fanned out across a process pool (``n_jobs > 1``)
without changing a single byte of the results: each worker runs the same
``ActiveLearningLoop`` the serial path would, and the results are
reassembled in input order regardless of completion order.
"""

from __future__ import annotations

import multiprocessing
from collections.abc import Callable, Mapping
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from ..core.loop import ActiveLearningLoop, ALResult
from ..eval.curves import LearningCurve, curve_std, mean_curve
from ..exceptions import ConfigurationError
from ..rng import ensure_rng
from .config import ExperimentConfig

StrategyFactory = Callable[[], object]


@dataclass
class StrategyResult:
    """Aggregated outcome of one strategy across repeats."""

    name: str
    curve: LearningCurve
    std: np.ndarray
    runs: list[ALResult]


#: Shared state for fork-started pool workers.  Factories are usually
#: lambdas/closures and therefore not picklable, so instead of shipping
#: them through the executor we stash everything here before forking and
#: let the children inherit it; only (strategy_index, seed) crosses the
#: process boundary.
_POOL_STATE: tuple | None = None


def _run_cell(
    model_factory: Callable[[], object],
    strategy_factory: StrategyFactory,
    train_dataset,
    test_dataset,
    config: ExperimentConfig,
    metric,
    seed: int,
) -> ALResult:
    """Run one (strategy, repeat) cell of the comparison grid."""
    loop = ActiveLearningLoop(
        model_prototype=model_factory(),
        strategy=strategy_factory(),
        train_dataset=train_dataset,
        test_dataset=test_dataset,
        batch_size=config.batch_size,
        rounds=config.rounds,
        initial_size=config.initial_size,
        metric=metric,
        seed_or_rng=int(seed),
    )
    return loop.run()


def _run_cell_from_state(strategy_index: int, seed: int) -> ALResult:
    """Pool-worker entry point: look the cell up in the inherited state."""
    model_factory, factories, train_dataset, test_dataset, config, metric = _POOL_STATE
    return _run_cell(
        model_factory,
        factories[strategy_index],
        train_dataset,
        test_dataset,
        config,
        metric,
        seed,
    )


def run_comparison(
    model_factory: Callable[[], object],
    strategy_factories: "Mapping[str, StrategyFactory]",
    train_dataset,
    test_dataset,
    config: ExperimentConfig | None = None,
    metric: "Callable[[object, object], float] | None" = None,
    n_jobs: int = 1,
) -> dict[str, StrategyResult]:
    """Run every strategy ``config.repeats`` times and average the curves.

    Parameters
    ----------
    model_factory:
        Zero-argument callable producing a fresh unfitted model.
    strategy_factories:
        Mapping from display name to a zero-argument strategy factory
        (factories, not instances: history-aware strategies are stateful
        per run).
    n_jobs:
        Worker processes for the (strategy, repeat) grid.  ``1`` (the
        default) runs serially in-process.  Higher values fan the cells
        out over a fork-started process pool; because every cell is
        seeded independently and results are reassembled in input order,
        the output is byte-identical to the serial run.  On platforms
        without the ``fork`` start method the runner silently falls back
        to serial execution (same results, no speedup).

    Returns
    -------
    dict
        Display name -> :class:`StrategyResult`, in input order.
    """
    if not strategy_factories:
        raise ConfigurationError("no strategies to compare")
    if n_jobs < 1:
        raise ConfigurationError(f"n_jobs must be >= 1, got {n_jobs}")
    config = config or ExperimentConfig()
    repeat_seeds = ensure_rng(config.seed).integers(0, 2**63 - 1, size=config.repeats)
    names = list(strategy_factories)
    factories = [strategy_factories[name] for name in names]
    cells = [
        (strategy_index, repeat_index)
        for strategy_index in range(len(names))
        for repeat_index in range(config.repeats)
    ]

    use_pool = (
        n_jobs > 1
        and len(cells) > 1
        and "fork" in multiprocessing.get_all_start_methods()
    )
    cell_results: dict[tuple[int, int], ALResult] = {}
    if use_pool:
        global _POOL_STATE
        _POOL_STATE = (
            model_factory,
            factories,
            train_dataset,
            test_dataset,
            config,
            metric,
        )
        try:
            context = multiprocessing.get_context("fork")
            with ProcessPoolExecutor(
                max_workers=min(n_jobs, len(cells)), mp_context=context
            ) as pool:
                futures = {
                    cell: pool.submit(
                        _run_cell_from_state, cell[0], int(repeat_seeds[cell[1]])
                    )
                    for cell in cells
                }
                for cell, future in futures.items():
                    cell_results[cell] = future.result()
        finally:
            _POOL_STATE = None
    else:
        for strategy_index, repeat_index in cells:
            cell_results[(strategy_index, repeat_index)] = _run_cell(
                model_factory,
                factories[strategy_index],
                train_dataset,
                test_dataset,
                config,
                metric,
                int(repeat_seeds[repeat_index]),
            )

    results: dict[str, StrategyResult] = {}
    for strategy_index, name in enumerate(names):
        runs = [
            cell_results[(strategy_index, repeat_index)]
            for repeat_index in range(config.repeats)
        ]
        curves = [run.curve(label=name) for run in runs]
        results[name] = StrategyResult(
            name=name,
            curve=mean_curve(curves, label=name),
            std=curve_std(curves),
            runs=runs,
        )
    return results

"""Experiment orchestration: seeded multi-repeat runs and paper-style reports."""

from .ascii_plot import plot_curves
from .checkpoint import CheckpointStore
from .config import ExperimentConfig
from .reporting import format_curve_table, format_table, format_target_table
from .runner import CellFailure, RetryPolicy, StrategyResult, run_comparison

__all__ = [
    "CellFailure",
    "CheckpointStore",
    "ExperimentConfig",
    "RetryPolicy",
    "StrategyResult",
    "format_curve_table",
    "format_table",
    "format_target_table",
    "plot_curves",
    "run_comparison",
]

"""Experiment orchestration: seeded multi-repeat runs and paper-style reports."""

from .ascii_plot import plot_curves
from .config import ExperimentConfig
from .reporting import format_curve_table, format_table, format_target_table
from .runner import StrategyResult, run_comparison

__all__ = [
    "ExperimentConfig",
    "StrategyResult",
    "format_curve_table",
    "format_table",
    "format_target_table",
    "plot_curves",
    "run_comparison",
]

"""Experiment orchestration: seeded multi-repeat runs and paper-style reports."""

from .ascii_plot import plot_curves
from .checkpoint import CheckpointStore
from .config import ExperimentConfig
from .distributed import (
    CellTicket,
    LeaseConfig,
    coordinate,
    create_queue,
    open_queue,
    run_distributed,
    run_worker,
)
from .reporting import (
    format_curve_table,
    format_metric_table,
    format_sweep_matrix,
    format_table,
    format_target_table,
)
from .runner import CellFailure, RetryPolicy, StrategyResult, run_comparison
from .sweep import (
    SweepCellResult,
    SweepResult,
    cell_directories,
    execute_experiment,
    metric_matrices,
    run_sweep,
)

__all__ = [
    "CellFailure",
    "CellTicket",
    "CheckpointStore",
    "ExperimentConfig",
    "LeaseConfig",
    "RetryPolicy",
    "StrategyResult",
    "SweepCellResult",
    "SweepResult",
    "cell_directories",
    "coordinate",
    "create_queue",
    "execute_experiment",
    "format_curve_table",
    "format_metric_table",
    "format_sweep_matrix",
    "format_table",
    "format_target_table",
    "metric_matrices",
    "open_queue",
    "plot_curves",
    "run_comparison",
    "run_distributed",
    "run_sweep",
    "run_worker",
]

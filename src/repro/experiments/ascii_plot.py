"""Terminal line plots of learning curves.

The paper's Figures 3-5 are multi-series line plots; in a terminal-only
environment the closest faithful rendering is a character grid.
:func:`plot_curves` draws several learning curves into one chart with a
per-series marker, a y-axis in metric units, and an x-axis in labeled
counts — enough to eyeball crossovers and gaps the way the paper's
figures are read.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from ..eval.curves import LearningCurve
from ..exceptions import ConfigurationError

#: Series markers, assigned in input order and reused cyclically.
MARKERS = "*o+x#@%&"


def plot_curves(
    curves: "Mapping[str, LearningCurve]",
    width: int = 60,
    height: int = 16,
) -> str:
    """Render ``curves`` as a multi-line ASCII chart with a legend.

    Later series draw over earlier ones where they collide, so list the
    most important series last.

    Raises
    ------
    ConfigurationError
        If no curves are given or the plot area is too small.
    """
    if not curves:
        raise ConfigurationError("no curves to plot")
    if width < 10 or height < 4:
        raise ConfigurationError(f"plot area {width}x{height} too small")

    x_min = min(int(curve.counts.min()) for curve in curves.values())
    x_max = max(int(curve.counts.max()) for curve in curves.values())
    y_min = min(float(curve.values.min()) for curve in curves.values())
    y_max = max(float(curve.values.max()) for curve in curves.values())
    if x_max == x_min:
        x_max = x_min + 1
    if np.isclose(y_max, y_min):
        y_max = y_min + 1e-9

    grid = [[" "] * width for _ in range(height)]

    def to_col(x: float) -> int:
        return int(round((x - x_min) / (x_max - x_min) * (width - 1)))

    def to_row(y: float) -> int:
        return (height - 1) - int(round((y - y_min) / (y_max - y_min) * (height - 1)))

    legend = []
    for series_index, (name, curve) in enumerate(curves.items()):
        marker = MARKERS[series_index % len(MARKERS)]
        legend.append(f"{marker} {name}")
        # Linear interpolation across columns keeps the polyline connected.
        columns = np.arange(to_col(curve.counts[0]), to_col(curve.counts[-1]) + 1)
        xs = x_min + columns / (width - 1) * (x_max - x_min)
        ys = np.interp(xs, curve.counts, curve.values)
        for column, y in zip(columns, ys):
            grid[to_row(float(y))][column] = marker

    y_labels = [f"{y_max:.3f}", f"{(y_min + y_max) / 2:.3f}", f"{y_min:.3f}"]
    label_width = max(len(label) for label in y_labels)
    lines = []
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = y_labels[0]
        elif row_index == height // 2:
            prefix = y_labels[1]
        elif row_index == height - 1:
            prefix = y_labels[2]
        else:
            prefix = ""
        lines.append(f"{prefix:>{label_width}} |" + "".join(row))
    axis = f"{'':>{label_width}} +" + "-" * width
    left = str(x_min)
    right = str(x_max)
    gap = max(1, width - len(left) - len(right))
    x_axis_labels = f"{'':>{label_width}}  {left}{' ' * gap}{right}"
    lines.append(axis)
    lines.append(x_axis_labels)
    lines.append(f"{'':>{label_width}}  " + "   ".join(legend))
    return "\n".join(lines)

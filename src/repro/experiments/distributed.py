"""Broker-less distributed grid execution over a shared work queue.

:func:`~repro.experiments.runner.run_comparison` fans a comparison grid
over a process pool on one machine.  This module takes the same grid
beyond one machine without introducing a broker: the *coordinator*
materializes one pure-JSON spec document per (strategy, repeat) cell
into a queue directory on a shared filesystem, and independent *worker*
processes — started on any host that can see that directory, via
:func:`run_worker` or the ``repro worker`` CLI — claim cells, execute
them through the exact spec-built runner path serial execution uses, and
commit their results atomically into the existing
:class:`~repro.experiments.checkpoint.CheckpointStore`.  The coordinator
just watches the checkpoint store fill in.

Two queue backends share one protocol:

* ``file`` — everything is plain files.  A cell is claimed by creating
  its lease file with ``O_CREAT | O_EXCL`` (atomic on POSIX, including
  NFS v3+); the lease carries the owner id and its mtime is the
  heartbeat, renewed by ``os.utime``.
* ``sqlite`` — cell state lives in a single ``queue.db`` (sqlite3,
  stdlib); claims are ``BEGIN IMMEDIATE`` transactions.  Better for
  many small cells on a local disk; the file backend is the one to use
  over network filesystems.

Robustness model
----------------

Every transition is crash-equivalent: a worker may be SIGKILLed at any
instant and the grid still converges to checkpoints byte-identical to a
serial run, because

* cell execution is a pure function of the cell ticket (spec + seed) —
  re-running a cell produces the same bytes, so reclaiming the cell of
  a dead worker (its lease's heartbeat went stale) is always safe;
* mid-cell progress is snapshotted per round through the checkpoint
  store, so a reclaimed cell resumes from its last committed round and
  still produces identical bytes (PR 4's byte-identical restore);
* results commit by atomic rename *before* the ``done`` marker is
  created, so a marker never vouches for bytes that are not there; a
  worker killed between the two leaves a finished checkpoint that the
  next claimant detects and commits without recomputing;
* duplicate executions (a slow worker whose lease was reaped races its
  replacement) commit identical bytes through atomic renames and
  settle the ``done`` marker with ``O_EXCL`` — last writer loses and
  records a ``duplicate-commit`` audit event, nothing is double-counted.

Clock skew: lease staleness is judged by ``abs(now - heartbeat)`` — a
lease whose heartbeat sits *in the future* beyond the skew tolerance was
written by an untrustworthy clock and is reaped like an expired one.
Reaping a live worker by mistake costs duplicated work, never
correctness (see above), so the queue errs toward reclaiming.

Cells that fail repeatedly are *quarantined*: after
``RetryPolicy.max_attempts`` failures (counted across workers via
``O_EXCL`` attempt tokens, paced by the policy's jittered exponential
backoff) the cell gets a permanent :class:`CellFailure` audit record
instead of stalling the grid, and the coordinator applies the usual
``on_error`` semantics — ``"raise"`` aborts, ``"skip"`` aggregates the
survivors with the failures attached to their
:class:`~repro.experiments.runner.StrategyResult`.

Every protocol event (claim, heartbeat loss, reap, commit, quarantine,
release) is appended to ``audit.log`` in the queue directory as one JSON
line, so a finished grid can answer "which host ran cell X, and what
happened to the worker that died?".
"""

from __future__ import annotations

import itertools
import json
import multiprocessing
import os
import socket
import sqlite3
import threading
import time
import uuid
from contextlib import closing
from dataclasses import dataclass
from functools import partial
from pathlib import Path

from ..exceptions import ConfigurationError, ExecutionError, QueueError
from ..ioutil import atomic_write_json, fsync_directory
from ..specs.experiment import ExperimentSpec
from ..specs.models import build_model
from ..specs.strategies import build_strategy
from .checkpoint import CheckpointStore, cell_stem
from .runner import (
    CellFailure,
    RetryPolicy,
    StrategyResult,
    _run_cell,
    aggregate_strategy_results,
    grid_repeat_seeds,
)

# Queue and ticket schema constants live in :mod:`repro.formats` and are
# re-exported here by the module that owns their readers.
from ..formats import CELL_FORMAT, CELL_VERSION, QUEUE_FORMAT, QUEUE_VERSION

#: Queue backends :func:`create_queue` accepts.
QUEUE_BACKENDS = ("file", "sqlite")


@dataclass(frozen=True)
class LeaseConfig:
    """How long a claim stays valid without a heartbeat.

    Attributes
    ----------
    ttl:
        Seconds after the last heartbeat at which a lease counts as
        stale and its cell may be reclaimed.  Must comfortably exceed
        ``renewal_interval``; a TTL shorter than one engine round only
        costs duplicated work (commits are idempotent), never
        correctness.
    renewal_interval:
        Seconds between heartbeat renewals (default ``ttl / 3``).
    skew_tolerance:
        How far *in the future* a heartbeat may sit before the writer's
        clock is declared untrustworthy and the lease reaped (default:
        ``ttl``).
    """

    ttl: float = 30.0
    renewal_interval: "float | None" = None
    skew_tolerance: "float | None" = None

    def __post_init__(self) -> None:
        if self.ttl <= 0:
            raise ConfigurationError(f"lease ttl must be > 0, got {self.ttl}")
        if self.renewal_interval is not None and not (
            0 < self.renewal_interval < self.ttl
        ):
            raise ConfigurationError(
                f"renewal_interval must be in (0, ttl), got {self.renewal_interval}"
            )
        if self.skew_tolerance is not None and self.skew_tolerance <= 0:
            raise ConfigurationError(
                f"skew_tolerance must be > 0, got {self.skew_tolerance}"
            )

    @property
    def renewal(self) -> float:
        return self.renewal_interval if self.renewal_interval is not None else self.ttl / 3.0

    @property
    def skew(self) -> float:
        return self.skew_tolerance if self.skew_tolerance is not None else self.ttl

    def to_dict(self) -> dict:
        """The JSON form stored in the queue envelope."""
        return {
            "ttl": self.ttl,
            "renewal_interval": self.renewal_interval,
            "skew_tolerance": self.skew_tolerance,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LeaseConfig":
        return cls(**payload)


@dataclass(frozen=True)
class CellTicket:
    """One claimable unit of work: a (strategy, repeat) cell plus its seed."""

    cell_id: str
    strategy: str
    strategy_index: int
    repeat: int
    seed: int

    def to_dict(self) -> dict:
        """The JSON form stored in the queue envelope and cell documents."""
        return {
            "cell_id": self.cell_id,
            "strategy": self.strategy,
            "strategy_index": self.strategy_index,
            "repeat": self.repeat,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CellTicket":
        return cls(
            cell_id=str(payload["cell_id"]),
            strategy=str(payload["strategy"]),
            strategy_index=int(payload["strategy_index"]),
            repeat=int(payload["repeat"]),
            seed=int(payload["seed"]),
        )


@dataclass(frozen=True)
class Claim:
    """A held lease on one cell: proof of the right to execute it."""

    ticket: CellTicket
    owner: str
    attempt: int


def _retry_to_dict(policy: RetryPolicy) -> dict:
    return {
        "max_attempts": policy.max_attempts,
        "backoff": policy.backoff,
        "backoff_factor": policy.backoff_factor,
        "max_delay": policy.max_delay,
        "jitter": policy.jitter,
    }


class CellQueue:
    """Shared protocol of both queue backends (see module docstring).

    Construction loads the queue's envelope (``queue.json``): the
    experiment document every worker rebuilds its datasets from, the
    lease and retry policies, the ordered cell tickets, and where the
    checkpoint store lives.  Backends implement the claim/heartbeat/
    commit/fail/reap state transitions.
    """

    backend = "abstract"

    def __init__(self, directory: "str | Path") -> None:
        self.directory = Path(directory)
        envelope_path = self.directory / "queue.json"
        try:
            envelope = json.loads(envelope_path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise QueueError(
                f"cannot read queue envelope {envelope_path}: {error}"
            ) from error
        if not isinstance(envelope, dict) or envelope.get("format") != QUEUE_FORMAT:
            raise QueueError(f"{envelope_path} is not a {QUEUE_FORMAT!r} document")
        if envelope.get("version") != QUEUE_VERSION:
            raise QueueError(
                f"unsupported queue version {envelope.get('version')!r} "
                f"in {envelope_path}"
            )
        if envelope.get("backend") != self.backend:
            raise QueueError(
                f"{envelope_path} was materialized with backend "
                f"{envelope.get('backend')!r}, opened as {self.backend!r}"
            )
        self.experiment: dict = envelope["experiment"]
        self.lease = LeaseConfig.from_dict(envelope["lease"])
        self.retry = RetryPolicy(**envelope["retry"])
        self.tickets = [CellTicket.from_dict(cell) for cell in envelope["cells"]]
        self._tickets_by_id = {ticket.cell_id: ticket for ticket in self.tickets}
        self._checkpoint_dir = str(envelope["checkpoint_dir"])

    # -- shared helpers ----------------------------------------------------

    @property
    def checkpoint_directory(self) -> Path:
        """The checkpoint store's directory (relative paths anchor here)."""
        path = Path(self._checkpoint_dir)
        return path if path.is_absolute() else self.directory / path

    def ticket(self, cell_id: str) -> CellTicket:
        """Look up one cell's ticket by id (:class:`QueueError` if unknown)."""
        if cell_id not in self._tickets_by_id:
            raise QueueError(f"unknown cell {cell_id!r} in queue {self.directory}")
        return self._tickets_by_id[cell_id]

    def audit(self, event: str, cell: "str | None" = None,
              owner: "str | None" = None, **detail) -> None:
        """Append one JSON line to the queue's audit log (crash-safe).

        A single ``O_APPEND`` write per record: concurrent writers from
        any number of hosts interleave whole lines, never bytes.
        """
        record = {"ts": time.time(), "event": event}
        if cell is not None:
            record["cell"] = cell
        if owner is not None:
            record["owner"] = owner
        record.update(detail)
        line = (json.dumps(record) + "\n").encode("utf-8")
        fd = os.open(
            self.directory / "audit.log", os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, line)
        finally:
            os.close(fd)

    def read_audit(self) -> list[dict]:
        """Every audit record, in append order (unparsable lines skipped)."""
        path = self.directory / "audit.log"
        if not path.exists():
            return []
        records = []
        for line in path.read_text().splitlines():
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue
        return records

    def _lease_stale(self, age: float) -> bool:
        """Stale = expired, or heartbeat from the future beyond tolerance."""
        return age > self.lease.ttl or -age > self.lease.skew

    # -- backend protocol --------------------------------------------------

    def claim(self, owner: str) -> "Claim | None":
        """Atomically claim the next eligible cell, or ``None``."""
        raise NotImplementedError

    def heartbeat(self, claim: Claim) -> bool:
        """Renew the lease; ``False`` means it was lost (reaped/overtaken)."""
        raise NotImplementedError

    def commit(self, claim: Claim) -> bool:
        """Settle the cell as done; ``False`` = someone beat us to it."""
        raise NotImplementedError

    def fail(self, claim: Claim, error: Exception) -> str:
        """Record one failed attempt; returns ``"retry"`` or ``"quarantined"``."""
        raise NotImplementedError

    def release(self, claim: Claim, reason: str) -> None:
        """Give the cell back without charging an attempt (e.g. Ctrl-C)."""
        raise NotImplementedError

    def release_owned(self, owners: "list[str]", reason: str) -> int:
        """Release every lease held by one of ``owners``; returns count."""
        raise NotImplementedError

    def reap_stale(self) -> int:
        """Reclaim cells whose lease went stale; returns how many."""
        raise NotImplementedError

    def settled(self) -> bool:
        """True when every cell is done or permanently failed."""
        raise NotImplementedError

    def counts(self) -> dict:
        """Cell-state tallies: total/done/failed/claimed/pending."""
        raise NotImplementedError

    def failures(self) -> "dict[str, CellFailure]":
        """Quarantined cells: cell id -> audit record."""
        raise NotImplementedError

    def quarantine_unsettled(self, reason: str) -> int:
        """Force-fail every not-yet-settled cell (coordinator timeout)."""
        raise NotImplementedError


class FileCellQueue(CellQueue):
    """Pure-filesystem backend: every state transition is a file operation.

    Layout under the queue directory::

        queue.json          envelope (experiment doc, lease/retry, tickets)
        cells/<id>.json     one self-contained spec document per cell
        leases/<id>.json    O_CREAT|O_EXCL claim; mtime = heartbeat
        retry/<id>.json     backoff state; .attempt-<n> tokens count failures
        done/<id>.json      commit marker (created durably, after the result)
        failed/<id>.json    quarantine record (a CellFailure, as JSON)
        audit.log           append-only JSONL protocol trace

    Only ``O_CREAT | O_EXCL`` creation, ``rename``, and ``utime`` are
    load-bearing for correctness — the operations that are atomic on
    POSIX filesystems including NFS — so the backend is safe for
    multiple hosts sharing the directory.
    """

    backend = "file"

    _SUBDIRS = ("cells", "leases", "retry", "done", "failed")

    def __init__(self, directory: "str | Path") -> None:
        super().__init__(directory)
        for name in self._SUBDIRS:
            (self.directory / name).mkdir(exist_ok=True)
        self._reap_counter = itertools.count()

    # -- paths -------------------------------------------------------------

    def _lease_path(self, cell_id: str) -> Path:
        return self.directory / "leases" / f"{cell_id}.json"

    def _done_path(self, cell_id: str) -> Path:
        return self.directory / "done" / f"{cell_id}.json"

    def _failed_path(self, cell_id: str) -> Path:
        return self.directory / "failed" / f"{cell_id}.json"

    def _retry_path(self, cell_id: str) -> Path:
        return self.directory / "retry" / f"{cell_id}.json"

    # -- claim / lease lifecycle -------------------------------------------

    def _read_json(self, path: Path) -> "dict | None":
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        return payload if isinstance(payload, dict) else None

    def _attempt_count(self, cell_id: str) -> int:
        retry_dir = self.directory / "retry"
        return sum(
            1 for _ in retry_dir.glob(f"{cell_id}.attempt-*")
        )

    def _eligible(self, ticket: CellTicket, now: float) -> bool:
        if self._done_path(ticket.cell_id).exists():
            return False
        if self._failed_path(ticket.cell_id).exists():
            return False
        state = self._read_json(self._retry_path(ticket.cell_id))
        if state and float(state.get("not_before", 0.0)) > now:
            return False
        return True

    def _try_reap(self, cell_id: str) -> bool:
        """Reclaim one stale lease via atomic rename (single winner)."""
        lease = self._lease_path(cell_id)
        tombstone = lease.with_name(
            f"{lease.name}.reaped-{os.getpid()}-{next(self._reap_counter)}"
            f"-{uuid.uuid4().hex[:8]}"
        )
        try:
            os.rename(lease, tombstone)
        except FileNotFoundError:
            return False  # someone else reaped (or the owner released) first
        info = self._read_json(tombstone) or {}
        try:
            os.unlink(tombstone)
        except OSError:
            pass
        self.audit("reaped", cell=cell_id, owner=info.get("owner"))
        return True

    def claim(self, owner: str) -> "Claim | None":
        now = time.time()
        for ticket in self.tickets:
            cell_id = ticket.cell_id
            if not self._eligible(ticket, now):
                continue
            lease = self._lease_path(cell_id)
            try:
                age = now - lease.stat().st_mtime
            except FileNotFoundError:
                pass
            else:
                if not self._lease_stale(age) or not self._try_reap(cell_id):
                    continue
            attempt = self._attempt_count(cell_id)
            try:
                fd = os.open(lease, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
            except FileExistsError:
                continue  # lost the race for this cell; try the next one
            with os.fdopen(fd, "w") as handle:
                handle.write(
                    json.dumps(
                        {"owner": owner, "claimed_at": now, "attempt": attempt}
                    )
                )
            if self._done_path(cell_id).exists():
                # The cell settled between the eligibility check and the
                # claim; drop the lease rather than re-executing.
                try:
                    os.unlink(lease)
                except OSError:
                    pass
                continue
            self.audit("claimed", cell=cell_id, owner=owner, attempt=attempt)
            return Claim(ticket=ticket, owner=owner, attempt=attempt)
        return None

    def heartbeat(self, claim: Claim) -> bool:
        lease = self._lease_path(claim.ticket.cell_id)
        info = self._read_json(lease)
        if info is None or info.get("owner") != claim.owner:
            return False
        try:
            os.utime(lease)
        except OSError:
            return False
        return True

    def _drop_lease(self, claim: Claim) -> bool:
        lease = self._lease_path(claim.ticket.cell_id)
        info = self._read_json(lease)
        if info is None or info.get("owner") != claim.owner:
            return False
        try:
            os.unlink(lease)
        except OSError:
            return False
        return True

    # -- settling ----------------------------------------------------------

    def commit(self, claim: Claim) -> bool:
        cell_id = claim.ticket.cell_id
        marker = self._done_path(cell_id)
        payload = json.dumps(
            {"cell_id": cell_id, "owner": claim.owner, "committed_at": time.time()}
        ).encode("utf-8")
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            # A reclaimed twin already committed the identical bytes.
            self.audit("duplicate-commit", cell=cell_id, owner=claim.owner)
            self._drop_lease(claim)
            return False
        try:
            os.write(fd, payload)
            os.fsync(fd)
        finally:
            os.close(fd)
        fsync_directory(marker.parent)
        self.audit("committed", cell=cell_id, owner=claim.owner)
        self._drop_lease(claim)
        return True

    def fail(self, claim: Claim, error: Exception) -> str:
        cell_id = claim.ticket.cell_id
        # O_EXCL attempt tokens make the failure count monotone even when
        # a reaped zombie and its replacement fail concurrently.
        attempts = self._attempt_count(cell_id)
        while True:
            attempts += 1
            token = self.directory / "retry" / f"{cell_id}.attempt-{attempts}"
            try:
                token.touch(exist_ok=False)
            except FileExistsError:
                continue
            break
        message = f"{type(error).__name__}: {error}"
        if attempts >= self.retry.max_attempts:
            failure = CellFailure(
                strategy=claim.ticket.strategy,
                repeat=claim.ticket.repeat,
                attempts=attempts,
                error=message,
            )
            atomic_write_json(
                self._failed_path(cell_id),
                {
                    "cell_id": cell_id,
                    "strategy": failure.strategy,
                    "repeat": failure.repeat,
                    "attempts": failure.attempts,
                    "error": failure.error,
                    "owner": claim.owner,
                },
                durable=True,
            )
            self.audit(
                "quarantined", cell=cell_id, owner=claim.owner,
                attempts=attempts, error=message,
            )
            self._drop_lease(claim)
            return "quarantined"
        delay = self.retry.delay(attempts, key=cell_id)
        atomic_write_json(
            self._retry_path(cell_id),
            {
                "attempts": attempts,
                "not_before": time.time() + delay,
                "last_error": message,
            },
        )
        self.audit(
            "failed", cell=cell_id, owner=claim.owner,
            attempts=attempts, retry_in=delay, error=message,
        )
        self._drop_lease(claim)
        return "retry"

    def release(self, claim: Claim, reason: str) -> None:
        if self._drop_lease(claim):
            self.audit(
                "released", cell=claim.ticket.cell_id, owner=claim.owner,
                reason=reason,
            )

    def release_owned(self, owners: "list[str]", reason: str) -> int:
        released = 0
        wanted = set(owners)
        for lease in (self.directory / "leases").glob("*.json"):
            info = self._read_json(lease)
            if info is None or info.get("owner") not in wanted:
                continue
            try:
                os.unlink(lease)
            except OSError:
                continue
            released += 1
            self.audit(
                "released", cell=lease.stem, owner=info.get("owner"), reason=reason
            )
        return released

    def reap_stale(self) -> int:
        now = time.time()
        reaped = 0
        for lease in (self.directory / "leases").glob("*.json"):
            if lease.name.count(".reaped-"):
                continue
            try:
                age = now - lease.stat().st_mtime
            except FileNotFoundError:
                continue
            if self._lease_stale(age) and self._try_reap(lease.stem):
                reaped += 1
        return reaped

    # -- queries -----------------------------------------------------------

    def settled(self) -> bool:
        return all(
            self._done_path(t.cell_id).exists() or self._failed_path(t.cell_id).exists()
            for t in self.tickets
        )

    def counts(self) -> dict:
        done = failed = claimed = 0
        for ticket in self.tickets:
            if self._done_path(ticket.cell_id).exists():
                done += 1
            elif self._failed_path(ticket.cell_id).exists():
                failed += 1
            elif self._lease_path(ticket.cell_id).exists():
                claimed += 1
        total = len(self.tickets)
        return {
            "total": total,
            "done": done,
            "failed": failed,
            "claimed": claimed,
            "pending": total - done - failed - claimed,
        }

    def failures(self) -> "dict[str, CellFailure]":
        records: dict[str, CellFailure] = {}
        for ticket in self.tickets:
            payload = self._read_json(self._failed_path(ticket.cell_id))
            if payload is None:
                continue
            records[ticket.cell_id] = CellFailure(
                strategy=str(payload.get("strategy", ticket.strategy)),
                repeat=int(payload.get("repeat", ticket.repeat)),
                attempts=int(payload.get("attempts", 0)),
                error=str(payload.get("error", "unknown failure")),
            )
        return records

    def quarantine_unsettled(self, reason: str) -> int:
        quarantined = 0
        for ticket in self.tickets:
            cell_id = ticket.cell_id
            if self._done_path(cell_id).exists() or self._failed_path(cell_id).exists():
                continue
            atomic_write_json(
                self._failed_path(cell_id),
                {
                    "cell_id": cell_id,
                    "strategy": ticket.strategy,
                    "repeat": ticket.repeat,
                    "attempts": self._attempt_count(cell_id),
                    "error": reason,
                },
                durable=True,
            )
            self.audit("quarantined", cell=cell_id, error=reason)
            quarantined += 1
        return quarantined


class SqliteCellQueue(CellQueue):
    """Sqlite3 backend: cell state in one ``queue.db``, claims in
    ``BEGIN IMMEDIATE`` transactions.

    Every operation opens its own short-lived connection (workers are
    independent processes), relies on sqlite's file locking for mutual
    exclusion, and mirrors the file backend's semantics exactly — the
    crash-equivalence tests run against both.  Heartbeats are a column
    instead of an mtime.  The experiment envelope still lives in
    ``queue.json`` so ``open_queue`` can dispatch without touching the
    database.
    """

    backend = "sqlite"

    _SCHEMA = """
        CREATE TABLE IF NOT EXISTS cells (
            cell_id        TEXT PRIMARY KEY,
            position       INTEGER NOT NULL,
            strategy       TEXT NOT NULL,
            strategy_index INTEGER NOT NULL,
            repeat_index   INTEGER NOT NULL,
            seed           INTEGER NOT NULL,
            state          TEXT NOT NULL DEFAULT 'pending',
            owner          TEXT,
            heartbeat      REAL,
            attempts       INTEGER NOT NULL DEFAULT 0,
            not_before     REAL NOT NULL DEFAULT 0,
            error          TEXT,
            document       TEXT NOT NULL
        )
    """

    def __init__(self, directory: "str | Path") -> None:
        super().__init__(directory)
        self._db_path = self.directory / "queue.db"
        if not self._db_path.exists():
            raise QueueError(f"queue database missing: {self._db_path}")

    def _connect(self) -> sqlite3.Connection:
        connection = sqlite3.connect(
            self._db_path, timeout=30.0, isolation_level=None
        )
        connection.row_factory = sqlite3.Row
        return connection

    @classmethod
    def _initialise(cls, directory: Path, tickets: "list[CellTicket]",
                    documents: "dict[str, dict]") -> None:
        with closing(sqlite3.connect(directory / "queue.db")) as connection:
            connection.execute(cls._SCHEMA)
            connection.executemany(
                "INSERT OR IGNORE INTO cells "
                "(cell_id, position, strategy, strategy_index, repeat_index, "
                " seed, document) VALUES (?, ?, ?, ?, ?, ?, ?)",
                [
                    (
                        ticket.cell_id,
                        position,
                        ticket.strategy,
                        ticket.strategy_index,
                        ticket.repeat,
                        ticket.seed,
                        json.dumps(documents[ticket.cell_id]),
                    )
                    for position, ticket in enumerate(tickets)
                ],
            )
            connection.commit()

    def _reap_in_transaction(self, connection: sqlite3.Connection, now: float) -> int:
        stale = connection.execute(
            "SELECT cell_id, owner FROM cells WHERE state = 'claimed' AND "
            "(? - heartbeat > ? OR heartbeat - ? > ?)",
            (now, self.lease.ttl, now, self.lease.skew),
        ).fetchall()
        for row in stale:
            connection.execute(
                "UPDATE cells SET state = 'pending', owner = NULL, "
                "heartbeat = NULL WHERE cell_id = ?",
                (row["cell_id"],),
            )
        return [(row["cell_id"], row["owner"]) for row in stale]

    def claim(self, owner: str) -> "Claim | None":
        now = time.time()
        with closing(self._connect()) as connection:
            connection.execute("BEGIN IMMEDIATE")
            reaped = self._reap_in_transaction(connection, now)
            row = connection.execute(
                "SELECT cell_id, attempts FROM cells WHERE state = 'pending' "
                "AND not_before <= ? ORDER BY position LIMIT 1",
                (now,),
            ).fetchone()
            if row is not None:
                connection.execute(
                    "UPDATE cells SET state = 'claimed', owner = ?, heartbeat = ? "
                    "WHERE cell_id = ?",
                    (owner, now, row["cell_id"]),
                )
            connection.execute("COMMIT")
        for cell_id, previous in reaped:
            self.audit("reaped", cell=cell_id, owner=previous)
        if row is None:
            return None
        attempt = int(row["attempts"])
        self.audit("claimed", cell=row["cell_id"], owner=owner, attempt=attempt)
        return Claim(ticket=self.ticket(row["cell_id"]), owner=owner, attempt=attempt)

    def heartbeat(self, claim: Claim) -> bool:
        with closing(self._connect()) as connection:
            cursor = connection.execute(
                "UPDATE cells SET heartbeat = ? WHERE cell_id = ? AND "
                "state = 'claimed' AND owner = ?",
                (time.time(), claim.ticket.cell_id, claim.owner),
            )
            return cursor.rowcount == 1

    def commit(self, claim: Claim) -> bool:
        cell_id = claim.ticket.cell_id
        with closing(self._connect()) as connection:
            connection.execute("BEGIN IMMEDIATE")
            row = connection.execute(
                "SELECT state FROM cells WHERE cell_id = ?", (cell_id,)
            ).fetchone()
            if row is None:
                connection.execute("COMMIT")
                raise QueueError(f"unknown cell {cell_id!r} in {self._db_path}")
            duplicate = row["state"] == "done"
            if not duplicate:
                connection.execute(
                    "UPDATE cells SET state = 'done', owner = ?, error = NULL "
                    "WHERE cell_id = ?",
                    (claim.owner, cell_id),
                )
            connection.execute("COMMIT")
        if duplicate:
            self.audit("duplicate-commit", cell=cell_id, owner=claim.owner)
            return False
        self.audit("committed", cell=cell_id, owner=claim.owner)
        return True

    def fail(self, claim: Claim, error: Exception) -> str:
        cell_id = claim.ticket.cell_id
        message = f"{type(error).__name__}: {error}"
        with closing(self._connect()) as connection:
            connection.execute("BEGIN IMMEDIATE")
            row = connection.execute(
                "SELECT attempts, state FROM cells WHERE cell_id = ?", (cell_id,)
            ).fetchone()
            if row is None:
                connection.execute("COMMIT")
                raise QueueError(f"unknown cell {cell_id!r} in {self._db_path}")
            if row["state"] == "done":
                connection.execute("COMMIT")
                return "retry"  # settled elsewhere; nothing to record
            attempts = int(row["attempts"]) + 1
            if attempts >= self.retry.max_attempts:
                connection.execute(
                    "UPDATE cells SET state = 'failed', attempts = ?, error = ?, "
                    "owner = NULL, heartbeat = NULL WHERE cell_id = ?",
                    (attempts, message, cell_id),
                )
                outcome = "quarantined"
            else:
                delay = self.retry.delay(attempts, key=cell_id)
                connection.execute(
                    "UPDATE cells SET state = 'pending', attempts = ?, error = ?, "
                    "not_before = ?, owner = NULL, heartbeat = NULL "
                    "WHERE cell_id = ?",
                    (attempts, message, time.time() + delay, cell_id),
                )
                outcome = "retry"
            connection.execute("COMMIT")
        if outcome == "quarantined":
            self.audit(
                "quarantined", cell=cell_id, owner=claim.owner,
                attempts=attempts, error=message,
            )
        else:
            self.audit(
                "failed", cell=cell_id, owner=claim.owner,
                attempts=attempts, error=message,
            )
        return outcome

    def release(self, claim: Claim, reason: str) -> None:
        if self.release_owned([claim.owner], reason):
            pass

    def release_owned(self, owners: "list[str]", reason: str) -> int:
        if not owners:
            return 0
        placeholders = ", ".join("?" for _ in owners)
        with closing(self._connect()) as connection:
            connection.execute("BEGIN IMMEDIATE")
            rows = connection.execute(
                f"SELECT cell_id, owner FROM cells WHERE state = 'claimed' "
                f"AND owner IN ({placeholders})",
                list(owners),
            ).fetchall()
            for row in rows:
                connection.execute(
                    "UPDATE cells SET state = 'pending', owner = NULL, "
                    "heartbeat = NULL WHERE cell_id = ?",
                    (row["cell_id"],),
                )
            connection.execute("COMMIT")
        for row in rows:
            self.audit(
                "released", cell=row["cell_id"], owner=row["owner"], reason=reason
            )
        return len(rows)

    def reap_stale(self) -> int:
        with closing(self._connect()) as connection:
            connection.execute("BEGIN IMMEDIATE")
            reaped = self._reap_in_transaction(connection, time.time())
            connection.execute("COMMIT")
        for cell_id, previous in reaped:
            self.audit("reaped", cell=cell_id, owner=previous)
        return len(reaped)

    def settled(self) -> bool:
        with closing(self._connect()) as connection:
            row = connection.execute(
                "SELECT COUNT(*) AS open FROM cells "
                "WHERE state NOT IN ('done', 'failed')"
            ).fetchone()
            return int(row["open"]) == 0

    def counts(self) -> dict:
        with closing(self._connect()) as connection:
            rows = connection.execute(
                "SELECT state, COUNT(*) AS n FROM cells GROUP BY state"
            ).fetchall()
        tally = {row["state"]: int(row["n"]) for row in rows}
        total = sum(tally.values())
        return {
            "total": total,
            "done": tally.get("done", 0),
            "failed": tally.get("failed", 0),
            "claimed": tally.get("claimed", 0),
            "pending": tally.get("pending", 0),
        }

    def failures(self) -> "dict[str, CellFailure]":
        with closing(self._connect()) as connection:
            rows = connection.execute(
                "SELECT cell_id, strategy, repeat_index, attempts, error "
                "FROM cells WHERE state = 'failed'"
            ).fetchall()
        return {
            row["cell_id"]: CellFailure(
                strategy=row["strategy"],
                repeat=int(row["repeat_index"]),
                attempts=int(row["attempts"]),
                error=str(row["error"] or "unknown failure"),
            )
            for row in rows
        }

    def quarantine_unsettled(self, reason: str) -> int:
        with closing(self._connect()) as connection:
            connection.execute("BEGIN IMMEDIATE")
            rows = connection.execute(
                "SELECT cell_id FROM cells WHERE state NOT IN ('done', 'failed')"
            ).fetchall()
            for row in rows:
                connection.execute(
                    "UPDATE cells SET state = 'failed', error = ?, owner = NULL, "
                    "heartbeat = NULL WHERE cell_id = ?",
                    (reason, row["cell_id"]),
                )
            connection.execute("COMMIT")
        for row in rows:
            self.audit("quarantined", cell=row["cell_id"], error=reason)
        return len(rows)


# -- materialization ---------------------------------------------------------


def _grid_tickets(spec: ExperimentSpec) -> "list[CellTicket]":
    """Every (strategy, repeat) cell of the grid, with matched seeds."""
    seeds = grid_repeat_seeds(spec.config)
    tickets = []
    for strategy_index, strategy in enumerate(spec.strategies):
        for repeat in range(spec.config.repeats):
            tickets.append(
                CellTicket(
                    cell_id=cell_stem(strategy, repeat),
                    strategy=strategy,
                    strategy_index=strategy_index,
                    repeat=repeat,
                    seed=int(seeds[repeat]),
                )
            )
    return tickets


def _cell_document(spec: ExperimentSpec, ticket: CellTicket) -> dict:
    """One self-contained pure-JSON description of a cell: everything a
    worker on another host needs to reproduce it bit-for-bit."""
    document = {
        "format": CELL_FORMAT,
        "version": CELL_VERSION,
        **ticket.to_dict(),
        "specs": {
            "dataset": spec.dataset.to_dict(),
            "split": spec.split.to_dict(),
            "model": spec.resolved_model().to_dict(),
            "strategy": spec.strategies[ticket.strategy].to_dict(),
        },
        "experiment": spec.to_dict()["experiment"],
    }
    if spec.scenario is not None:
        # Key present only when a scenario perturbs the cell: documents
        # of unperturbed grids keep their exact historical byte shape.
        document["scenario"] = spec.scenario.to_dict()
    return document


def _science_document(experiment_doc: dict) -> dict:
    """The result-determining part of an experiment document.

    ``runner`` and ``report`` options (worker counts, timeouts, plot
    flags) do not affect the produced bytes, so re-opening a queue with
    different ones is legal; everything else must match exactly.
    """
    return {
        key: value
        for key, value in experiment_doc.items()
        if key not in ("runner", "report")
    }


def create_queue(
    directory: "str | Path",
    spec: ExperimentSpec,
    backend: str = "file",
    lease: "LeaseConfig | None" = None,
    retry: "RetryPolicy | None" = None,
    checkpoint_dir: "str | Path | None" = None,
) -> CellQueue:
    """Materialize a comparison grid into a queue directory (idempotent).

    Writes one spec document per cell plus the ``queue.json`` envelope —
    the envelope goes last, so workers polling for it never see a
    half-materialized queue.  Re-materializing an existing queue with
    the same experiment document simply reopens it (that is how a
    coordinator resumes); a *different* experiment raises
    :class:`~repro.exceptions.QueueError` rather than mixing grids.
    """
    if backend not in QUEUE_BACKENDS:
        raise ConfigurationError(
            f"queue backend must be one of {QUEUE_BACKENDS}, got {backend!r}"
        )
    directory = Path(directory)
    experiment_doc = spec.to_dict()
    envelope_path = directory / "queue.json"
    if envelope_path.exists():
        queue = open_queue(directory)
        if _science_document(queue.experiment) != _science_document(experiment_doc):
            raise QueueError(
                f"queue {directory} was materialized for a different "
                "experiment; use a fresh queue directory"
            )
        return queue
    directory.mkdir(parents=True, exist_ok=True)
    tickets = _grid_tickets(spec)
    documents = {
        ticket.cell_id: _cell_document(spec, ticket) for ticket in tickets
    }
    cells_dir = directory / "cells"
    cells_dir.mkdir(exist_ok=True)
    for ticket in tickets:
        atomic_write_json(
            cells_dir / f"{ticket.cell_id}.json", documents[ticket.cell_id]
        )
    if backend == "sqlite":
        SqliteCellQueue._initialise(directory, tickets, documents)
    if checkpoint_dir is None:
        stored_checkpoint = "checkpoints"
        (directory / "checkpoints").mkdir(exist_ok=True)
    else:
        stored_checkpoint = str(Path(checkpoint_dir).resolve())
    atomic_write_json(
        envelope_path,
        {
            "format": QUEUE_FORMAT,
            "version": QUEUE_VERSION,
            "backend": backend,
            "experiment": experiment_doc,
            "lease": (lease or LeaseConfig()).to_dict(),
            "retry": _retry_to_dict(retry or RetryPolicy()),
            "checkpoint_dir": stored_checkpoint,
            "cells": [ticket.to_dict() for ticket in tickets],
        },
        durable=True,
    )
    queue = open_queue(directory)
    queue.audit("materialized", cells=len(tickets), backend=backend)
    return queue


def open_queue(directory: "str | Path") -> CellQueue:
    """Open an existing queue directory, dispatching on its backend."""
    envelope_path = Path(directory) / "queue.json"
    try:
        envelope = json.loads(envelope_path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise QueueError(
            f"cannot read queue envelope {envelope_path}: {error}"
        ) from error
    backend = envelope.get("backend") if isinstance(envelope, dict) else None
    if backend == "file":
        return FileCellQueue(directory)
    if backend == "sqlite":
        return SqliteCellQueue(directory)
    raise QueueError(
        f"unknown queue backend {backend!r} in {envelope_path}"
    )


# -- the worker --------------------------------------------------------------


class _LeaseHeartbeat(threading.Thread):
    """Renews a claim's lease in the background while the cell runs.

    Losing the lease (reaped by a skew-suspicious peer, or the file
    vanished) flips :attr:`lost` and stops renewing; execution carries
    on, because committing after lease loss is safe — the result bytes
    are identical to whatever the replacement worker produces.
    """

    def __init__(self, queue: CellQueue, claim: Claim, interval: float,
                 on_event=None) -> None:
        super().__init__(daemon=True, name=f"lease-{claim.ticket.cell_id}")
        self._queue = queue
        self._claim = claim
        self._interval = interval
        self._on_event = on_event
        self._stop_event = threading.Event()
        self.lost = False

    def run(self) -> None:
        cell_id = self._claim.ticket.cell_id
        while not self._stop_event.wait(self._interval):
            if self._on_event is not None:
                self._on_event("heartbeat", cell_id)
            if not self._queue.heartbeat(self._claim):
                self.lost = True
                if self._on_event is not None:
                    self._on_event("heartbeat-lost", cell_id)
                return

    def stop(self) -> None:
        self._stop_event.set()
        self.join(timeout=5.0)


def default_owner() -> str:
    """The worker identity recorded in leases and the audit log."""
    return f"{socket.gethostname()}-{os.getpid()}"


def run_worker(
    queue_dir: "str | Path",
    owner: "str | None" = None,
    checkpoint_dir: "str | Path | None" = None,
    poll: float = 0.5,
    max_cells: "int | None" = None,
    on_event=None,
) -> dict:
    """Claim-execute-commit cells until the queue settles (or ``max_cells``).

    The worker rebuilds its datasets once from the queue's experiment
    document (deterministic: every worker holds byte-identical corpora),
    then loops: claim a cell, run it through the same
    spec-built engine path :func:`run_comparison` uses (round-level
    session snapshots included, so a reclaimed cell resumes mid-cell),
    write the result checkpoint atomically, and settle the ``done``
    marker.  A claimed cell whose checkpoint already exists — its
    previous owner died between saving and committing — is committed
    without recomputation.  Failures are charged to the queue's retry
    policy (jittered exponential backoff, quarantine past the poison
    threshold).  ``KeyboardInterrupt`` releases the held lease with a
    ``"interrupted"`` audit annotation before propagating, so a Ctrl-C'd
    worker never strands its cell for a full lease TTL.

    ``on_event`` is a test/observability hook called as
    ``on_event(event, cell_id)`` at every lifecycle point (``claimed``,
    ``heartbeat``, ``saved``, ``committed``, ``recovered``, ``retry``,
    ``quarantined``).

    Returns a summary dict: owner id plus completed/recovered/failed
    cell counts.
    """
    queue = open_queue(queue_dir)
    owner = owner or default_owner()
    emit = on_event if on_event is not None else (lambda event, cell_id: None)
    spec = ExperimentSpec.from_dict(queue.experiment)
    train_dataset, test_dataset, _task = spec.build_datasets()
    model_spec = spec.resolved_model().to_dict()
    strategy_specs = {
        name: strategy.to_dict() for name, strategy in spec.strategies.items()
    }
    store = CheckpointStore(
        checkpoint_dir or queue.checkpoint_directory,
        spec.config,
        model_spec=model_spec,
        strategy_specs=strategy_specs,
        scenario=spec.scenario_fingerprint(),
    )
    model_factory = partial(build_model, model_spec)
    summary = {"owner": owner, "completed": 0, "recovered": 0, "failed": 0}
    while max_cells is None or summary["completed"] < max_cells:
        claim = queue.claim(owner)
        if claim is None:
            if queue.settled():
                break
            queue.reap_stale()
            time.sleep(poll)
            continue
        ticket = claim.ticket
        try:
            # Inside the try-block so a raising on_event hook (fault
            # injection) is charged to the cell like any worker failure.
            emit("claimed", ticket.cell_id)
            existing = store.load(ticket.strategy, ticket.repeat, ticket.seed)
            if existing is not None:
                # The previous owner died between checkpoint and commit:
                # the bytes are already on disk, only the marker is owed.
                emit("recovered", ticket.cell_id)
                queue.commit(claim)
                emit("committed", ticket.cell_id)
                summary["completed"] += 1
                summary["recovered"] += 1
                continue
            heartbeat = _LeaseHeartbeat(queue, claim, queue.lease.renewal, on_event)
            heartbeat.start()
            try:
                result = _run_cell(
                    model_factory,
                    partial(build_strategy, strategy_specs[ticket.strategy]),
                    train_dataset,
                    test_dataset,
                    spec.config,
                    None,
                    ticket.seed,
                    store=store,
                    strategy_name=ticket.strategy,
                    repeat=ticket.repeat,
                )
            finally:
                heartbeat.stop()
            store.save(ticket.strategy, ticket.repeat, ticket.seed, result)
            store.discard_session(ticket.strategy, ticket.repeat)
            emit("saved", ticket.cell_id)
            queue.commit(claim)
            emit("committed", ticket.cell_id)
            summary["completed"] += 1
        except KeyboardInterrupt:
            queue.release(claim, "interrupted")
            raise
        except Exception as error:
            outcome = queue.fail(claim, error)
            emit(outcome, ticket.cell_id)
            summary["failed"] += 1
    return summary


# -- the coordinator ---------------------------------------------------------


def collect_results(
    queue: CellQueue, on_error: str = "raise"
) -> "dict[str, StrategyResult]":
    """Aggregate a settled queue from its checkpoint store.

    A cell with both a checkpoint and a failure record counts as done —
    the checkpoint is the ground truth (e.g. a worker finished after the
    coordinator's timeout already quarantined the cell).

    Raises
    ------
    ExecutionError
        Under ``on_error="raise"`` when any cell was quarantined, or in
        any mode when a cell is unsettled or every repeat of a strategy
        failed.
    """
    spec = ExperimentSpec.from_dict(queue.experiment)
    store = CheckpointStore(
        queue.checkpoint_directory,
        spec.config,
        model_spec=spec.resolved_model().to_dict(),
        strategy_specs={
            name: strategy.to_dict() for name, strategy in spec.strategies.items()
        },
        scenario=spec.scenario_fingerprint(),
    )
    recorded = queue.failures()
    cell_results: dict[tuple[int, int], object] = {}
    cell_failures: dict[tuple[int, int], CellFailure] = {}
    for ticket in queue.tickets:
        key = (ticket.strategy_index, ticket.repeat)
        result = store.load(ticket.strategy, ticket.repeat, ticket.seed)
        if result is not None:
            cell_results[key] = result
        elif ticket.cell_id in recorded:
            cell_failures[key] = recorded[ticket.cell_id]
        else:
            raise ExecutionError(
                f"cell {ticket.cell_id} is unsettled: no checkpoint and no "
                "failure record (is the grid still running?)"
            )
    if cell_failures and on_error == "raise":
        details = "; ".join(
            f"({failure.strategy!r}, repeat {failure.repeat}): {failure.error}"
            for failure in cell_failures.values()
        )
        raise ExecutionError(
            f"{len(cell_failures)} cell(s) failed permanently: {details}"
        )
    names = list(spec.strategies)
    return aggregate_strategy_results(
        names, spec.config.repeats, cell_results, cell_failures
    )


def coordinate(
    queue_dir: "str | Path",
    on_error: str = "raise",
    timeout: "float | None" = None,
    poll: float = 0.5,
) -> "dict[str, StrategyResult]":
    """Watch a queue until it settles, then aggregate the results.

    The coordinator holds no state the queue does not: it reaps stale
    leases while waiting (workers do too — reaping is not a coordinator
    privilege) and aggregates from the checkpoint store once every cell
    is done or quarantined.  With a ``timeout``, a grid that has not
    settled in time either raises (``on_error="raise"``) or force-
    quarantines the unsettled cells and degrades to skip semantics,
    aggregating whatever completed.
    """
    queue = open_queue(queue_dir)
    deadline = None if timeout is None else time.monotonic() + timeout
    while not queue.settled():
        queue.reap_stale()
        if deadline is not None and time.monotonic() > deadline:
            counts = queue.counts()
            if on_error == "raise":
                raise ExecutionError(
                    f"distributed grid timed out after {timeout}s with "
                    f"{counts['pending']} pending and {counts['claimed']} "
                    f"claimed cell(s) in {queue.directory}"
                )
            queue.quarantine_unsettled(
                f"coordinator timeout after {timeout}s"
            )
            break
        time.sleep(poll)
    return collect_results(queue, on_error=on_error)


def _worker_process(queue_dir: str, owner: str, poll: float) -> None:
    """Entry point of a locally spawned worker process (spawn-safe)."""
    try:
        run_worker(queue_dir, owner=owner, poll=poll)
    except KeyboardInterrupt:
        pass


def run_distributed(
    spec: ExperimentSpec,
    queue_dir: "str | Path",
    workers: int = 1,
    backend: str = "file",
    lease: "LeaseConfig | None" = None,
    retry: "RetryPolicy | None" = None,
    on_error: str = "raise",
    timeout: "float | None" = None,
    poll: float = 0.2,
    checkpoint_dir: "str | Path | None" = None,
) -> "dict[str, StrategyResult]":
    """Materialize a grid, optionally spawn local workers, and coordinate.

    ``workers=0`` materializes and coordinates only — the mode for a
    grid whose workers run on other hosts (start them there with
    ``repro worker --queue-dir <shared dir>``); any additional worker
    may also join an in-flight grid at any time.  Results are
    byte-identical to :func:`run_comparison` on the same spec, whatever
    the worker census did mid-run.

    Interrupting the coordinator (Ctrl-C) terminates the local workers,
    releases the leases they still hold with an ``"interrupted"`` audit
    annotation — so the cells are instantly reclaimable instead of
    waiting out the TTL — and re-raises; completed cells stay
    checkpointed, and rerunning against the same queue directory
    resumes exactly where the grid stopped.
    """
    if workers < 0:
        raise ConfigurationError(f"workers must be >= 0, got {workers}")
    queue = create_queue(
        queue_dir,
        spec,
        backend=backend,
        lease=lease,
        retry=retry,
        checkpoint_dir=checkpoint_dir,
    )
    start_methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context(
        "fork" if "fork" in start_methods else "spawn"
    )
    owners = [f"local-{default_owner()}-{index}" for index in range(workers)]
    processes = [
        context.Process(
            target=_worker_process,
            args=(str(queue_dir), owner, poll),
            daemon=True,
        )
        for owner in owners
    ]
    for process in processes:
        process.start()
    try:
        results = coordinate(
            queue_dir, on_error=on_error, timeout=timeout, poll=poll
        )
    except BaseException:
        _stop_local_workers(queue, processes, owners, reason="interrupted")
        raise
    for process in processes:
        process.join(timeout=10.0)
    _stop_local_workers(queue, processes, owners, reason="coordinator finished")
    return results


def _stop_local_workers(
    queue: CellQueue,
    processes: "list[multiprocessing.Process]",
    owners: "list[str]",
    reason: str,
) -> None:
    """Terminate local workers and release any leases they still hold."""
    for process in processes:
        if process.is_alive():
            process.terminate()
    for process in processes:
        process.join(timeout=5.0)
    try:
        queue.release_owned(owners, reason=reason)
    except OSError:
        pass

"""Sweep execution: run a scenario grid through the existing runners.

A sweep cell is just an experiment document, so this module adds no new
execution machinery: :func:`execute_experiment` routes one spec through
:func:`~repro.experiments.runner.run_comparison` (serial or pooled) or
:func:`~repro.experiments.distributed.run_distributed` exactly as
``repro run --config`` does — it *is* the execution half of that
command, extracted so sweeps and the CLI share one code path — and
:func:`run_sweep` drives every grid cell through it, isolating each
cell's checkpoints (and queue, when distributed) in its own
subdirectory keyed by the cell's content-hashed slug.

The metric half is the :class:`~repro.eval.pipeline.MetricPipeline` the
sweep document configures: each cell's results become a
:class:`~repro.eval.pipeline.MetricContext` (with the scenario's
annotation costs attached), and the per-cell metric matrices fold into
grid-shaped matrices for 1- and 2-axis sweeps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path

from ..eval.pipeline import MetricContext
from ..exceptions import ConfigurationError
from ..specs.experiment import ExperimentSpec
from ..specs.sweep import SweepCell, SweepSpec
from .distributed import LeaseConfig, run_distributed
from .runner import RetryPolicy, StrategyResult, run_comparison


def execute_experiment(
    spec: ExperimentSpec,
    checkpoint_dir: "str | Path | None" = None,
    queue_dir: "str | Path | None" = None,
    resume: "bool | None" = None,
):
    """Execute one experiment document through its runner options.

    ``checkpoint_dir`` / ``queue_dir`` / ``resume`` override the
    document's ``runner`` section when given (sweeps use this to give
    every cell its own directories).  Returns
    ``(results, train, test, task)`` with ``results`` the
    ``{strategy: StrategyResult}`` mapping of the runner.
    """
    runner = dict(spec.runner)
    if checkpoint_dir is not None:
        runner["checkpoint_dir"] = str(checkpoint_dir)
    if queue_dir is not None:
        runner["queue_dir"] = str(queue_dir)
    if resume is not None:
        runner["resume"] = bool(resume)
    if runner["resume"] and not runner["checkpoint_dir"]:
        raise ConfigurationError("--resume requires --checkpoint-dir")
    retry = RetryPolicy(
        max_attempts=runner["max_retries"] + 1, backoff=runner["backoff"]
    )
    train, test, task = spec.build_datasets()
    if runner["queue_dir"]:
        results = run_distributed(
            spec,
            runner["queue_dir"],
            workers=runner["local_workers"],
            backend=runner["queue_backend"],
            lease=LeaseConfig(ttl=runner["lease_ttl"]),
            retry=retry,
            on_error=runner["on_error"],
            timeout=runner["timeout"],
            checkpoint_dir=runner["checkpoint_dir"],
        )
    else:
        results = run_comparison(
            spec.resolved_model(),
            spec.strategies,
            train,
            test,
            config=spec.config,
            n_jobs=runner["n_jobs"],
            checkpoint_dir=runner["checkpoint_dir"],
            resume=runner["resume"],
            retry=retry,
            on_error=runner["on_error"],
            start_method=runner["start_method"],
            scenario=spec.scenario_fingerprint(),
        )
    return results, train, test, task


@dataclass
class SweepCellResult:
    """One executed grid cell: its derived spec's results and metrics."""

    cell: SweepCell
    results: "dict[str, StrategyResult]"
    #: ``{metric_label: {strategy: value}}`` from the sweep's pipeline.
    metrics: "dict[str, dict[str, float]]"
    task: str = ""
    train_name: str = ""


@dataclass
class SweepResult:
    """A finished sweep: every cell result in grid order."""

    sweep: SweepSpec
    cells: "list[SweepCellResult]" = field(default_factory=list)

    def by_coords(self) -> "dict[tuple[int, ...], SweepCellResult]":
        """Map grid coordinates to their cell results."""
        return {result.cell.coords: result for result in self.cells}

    def strategies(self) -> list[str]:
        """Strategy names in first-seen order across all cells."""
        names: list[str] = []
        for result in self.cells:
            for name in result.results:
                if name not in names:
                    names.append(name)
        return names


def cell_directories(
    sweep_dir: "str | Path", cell: SweepCell
) -> "tuple[Path, Path]":
    """``(checkpoint_dir, queue_dir)`` for one cell under the sweep dir.

    Keyed by the cell's content-hashed slug, so editing a cell's
    perturbations retires its old directory instead of poisoning resume
    — and the per-cell checkpoint fingerprint (which embeds the scenario)
    refuses anything that still collides.
    """
    base = Path(sweep_dir) / "cells" / cell.slug
    return base / "checkpoints", base / "queue"


def run_sweep(
    sweep: SweepSpec,
    sweep_dir: "str | Path | None" = None,
    resume: bool = False,
    on_cell=None,
) -> SweepResult:
    """Execute every grid cell and compute its metric matrix.

    With ``sweep_dir``, each cell checkpoints (and queues, when the base
    document routes through the distributed queue) under its own
    subdirectory; ``resume=True`` then reuses completed cells.  Without
    ``sweep_dir``, a multi-cell sweep whose base document names a
    ``checkpoint_dir`` or ``queue_dir`` is refused — the cells would
    overwrite each other's state.

    ``on_cell`` is called as ``on_cell(result, train)`` after each cell
    (the CLI prints incrementally from it).
    """
    pipeline = sweep.metric_pipeline()
    cells = sweep.cells()
    runner = sweep.base.get("runner", {}) if isinstance(sweep.base, dict) else {}
    if sweep_dir is None and len(cells) > 1 and (
        runner.get("checkpoint_dir") or runner.get("queue_dir")
    ):
        raise ConfigurationError(
            "a multi-cell sweep whose base document sets checkpoint_dir or "
            "queue_dir needs a sweep directory (--sweep-dir) to keep the "
            "cells' state apart"
        )
    if resume and sweep_dir is None:
        raise ConfigurationError("sweep resume requires --sweep-dir")
    outcome = SweepResult(sweep=sweep)
    for cell in cells:
        checkpoint_dir = queue_dir = None
        if sweep_dir is not None:
            checkpoint_dir, queue_dir = cell_directories(sweep_dir, cell)
            checkpoint_dir.mkdir(parents=True, exist_ok=True)
            if not runner.get("queue_dir"):
                queue_dir = None  # the base document runs in-process
        results, train, _test, task = execute_experiment(
            cell.spec,
            checkpoint_dir=checkpoint_dir,
            queue_dir=queue_dir,
            resume=resume if sweep_dir is not None else None,
        )
        context = MetricContext.from_strategy_results(
            results, costs=cell.spec.annotation_costs(train)
        )
        result = SweepCellResult(
            cell=cell,
            results=results,
            metrics=pipeline.compute(context),
            task=task,
            train_name=getattr(train, "name", ""),
        )
        outcome.cells.append(result)
        if on_cell is not None:
            on_cell(result, train)
    return outcome


def metric_matrices(outcome: SweepResult) -> "list[dict]":
    """Grid-shaped views of a sweep's metrics, for 1- and 2-axis sweeps.

    One entry per (metric, strategy): ``{"metric", "strategy", "rows",
    "cols", "values"}`` where ``values[i][j]`` is the measurement at row
    cell ``i`` / column cell ``j`` (``None`` for cells that did not
    run).  A 1-axis sweep renders as a single-row matrix; sweeps with
    three or more axes return no matrices (the per-cell tables remain).
    """
    axes = outcome.sweep.axes
    if not 1 <= len(axes) <= 2:
        return []
    by_coords = outcome.by_coords()
    pipeline_labels = outcome.sweep.metric_pipeline().labels()
    if len(axes) == 1:
        row_axis, col_axis = None, axes[0]
    else:
        row_axis, col_axis = axes[0], axes[1]
    row_names = (
        [cell.name for cell in row_axis.cells] if row_axis is not None else [""]
    )
    col_names = [cell.name for cell in col_axis.cells]
    matrices = []
    for label in pipeline_labels:
        for strategy in outcome.strategies():
            values = []
            for row in range(len(row_names)):
                line: "list[float | None]" = []
                for col in range(len(col_names)):
                    coords = (col,) if row_axis is None else (row, col)
                    cell_result = by_coords.get(coords)
                    value = (
                        None
                        if cell_result is None
                        else cell_result.metrics.get(label, {}).get(strategy)
                    )
                    if value is not None and math.isnan(value):
                        value = None
                    line.append(value)
                values.append(line)
            matrices.append(
                {
                    "metric": label,
                    "strategy": strategy,
                    "rows": row_names,
                    "cols": col_names,
                    "row_axis": row_axis.name if row_axis is not None else "",
                    "col_axis": col_axis.name,
                    "values": values,
                }
            )
    return matrices
